#include "engine/query_engine.h"

#include <algorithm>
#include <chrono>

#include "cache/delta_planner.h"
#include "exec/parallel_executor.h"

namespace neurodb {
namespace engine {

using geom::Aabb;
using geom::ElementId;

Status EngineOptions::Validate() const {
  if (pool_pages == 0) {
    return Status::InvalidArgument("EngineOptions: pool_pages must be > 0");
  }
  if (num_threads == 0) {
    return Status::InvalidArgument("EngineOptions: num_threads must be > 0");
  }
  if (session.pool_pages == 0) {
    return Status::InvalidArgument(
        "EngineOptions: session.pool_pages must be > 0");
  }
  if (retained_versions == 0) {
    return Status::InvalidArgument(
        "EngineOptions: retained_versions must be > 0");
  }
  if (slow_query_us > 0 && metrics == MetricsMode::kOff) {
    return Status::InvalidArgument(
        "EngineOptions: slow_query_us requires metrics == kOn");
  }
  if (slow_query_us > 0 && slow_log_entries == 0) {
    return Status::InvalidArgument(
        "EngineOptions: slow_query_us requires slow_log_entries > 0");
  }
  NEURODB_RETURN_NOT_OK(flat.Validate());
  NEURODB_RETURN_NOT_OK(grid.Validate());
  NEURODB_RETURN_NOT_OK(sharded.Validate());
  NEURODB_RETURN_NOT_OK(durability.Validate());
  return rtree.Validate();
}

QueryEngine::QueryEngine(EngineOptions options) : options_(std::move(options)) {
  auto flat = std::make_unique<FlatBackend>(options_.flat);
  auto rtree = std::make_unique<PagedRTreeBackend>(options_.rtree);
  auto grid = std::make_unique<GridBackend>(options_.grid);
  auto sharded = std::make_unique<ShardedBackend>(options_.sharded);
  flat_ = flat.get();
  rtree_ = rtree.get();
  grid_ = grid.get();
  sharded_ = sharded.get();
  backends_.push_back(std::move(flat));
  backends_.push_back(std::move(rtree));
  backends_.push_back(std::move(grid));
  backends_.push_back(std::move(sharded));

  if (options_.metrics == MetricsMode::kOn) {
    metrics_ = std::make_unique<obs::MetricsRegistry>();
    InitMetrics();
    if (options_.slow_query_us > 0 && options_.slow_log_entries > 0) {
      slow_log_ = std::make_unique<obs::SlowQueryLog>(
          options_.slow_log_entries, options_.slow_query_us);
    }
  }
}

void QueryEngine::InitMetrics() {
  obs::MetricsRegistry* m = metrics_.get();
  em_.range.count = m->counter("engine.query.range.count");
  em_.range.results = m->counter("engine.query.range.results");
  em_.range.pages_read = m->counter("engine.query.range.pages_read");
  em_.range.latency_us = m->histogram("engine.query.range.latency_us");
  em_.knn.count = m->counter("engine.query.knn.count");
  em_.knn.results = m->counter("engine.query.knn.results");
  em_.knn.pages_read = m->counter("engine.query.knn.pages_read");
  em_.knn.latency_us = m->histogram("engine.query.knn.latency_us");
  em_.batch_count = m->counter("engine.batch.count");
  em_.batch_queries = m->counter("engine.batch.queries");
  em_.batch_lanes = m->counter("engine.batch.lanes");
  em_.batch_latency_us = m->histogram("engine.batch.latency_us");
  em_.batch_lane_time_us = m->histogram("engine.batch.lane_time_us");
  em_.update_batches = m->counter("engine.update.batches");
  em_.update_ops = m->counter("engine.update.ops");
  em_.update_invalidated_boxes = m->counter("engine.update.invalidated_boxes");
  em_.update_latency_us = m->histogram("engine.update.latency_us");
  em_.compact_count = m->counter("engine.compact.count");
  em_.compact_latency_us = m->histogram("engine.compact.latency_us");
  em_.checkpoint_count = m->counter("engine.checkpoint.count");
  em_.checkpoint_latency_us = m->histogram("engine.checkpoint.latency_us");
  // Background-checkpoint I/O attributed to its own instrument — a query
  // or commit running concurrently must not absorb the rewrite's bytes.
  em_.checkpoint_bytes_written = m->counter("engine.checkpoint.bytes_written");
  em_.checkpoint_fsyncs = m->counter("engine.checkpoint.fsyncs");
  em_.wal_fsync = m->counter("wal.fsync");
  em_.commit_group_size = m->histogram("engine.commit.group_size");
  em_.slow_queries = m->counter("engine.slow_queries");
}

QueryEngine::~QueryEngine() {
  // Join the mutation worker first: an in-flight ApplyUpdatesAsync/
  // CompactAsync still touches backends, the pool manager and the WAL.
  // Then the lane pool (sharded_ holds a raw pointer into it).
  mutation_pool_.reset();
  thread_pool_.reset();
}

exec::ThreadPool* QueryEngine::MutationPool() {
  std::call_once(mutation_pool_once_, [this] {
    mutation_pool_ = std::make_unique<exec::ThreadPool>(1);
  });
  return mutation_pool_.get();
}

Status QueryEngine::RegisterBackend(std::unique_ptr<SpatialBackend> backend) {
  if (backend == nullptr) {
    return Status::InvalidArgument("QueryEngine: null backend");
  }
  if (loaded_) {
    return Status::InvalidArgument(
        "QueryEngine: backends must be registered before LoadCircuit");
  }
  for (const auto& existing : backends_) {
    if (std::string(existing->name()) == backend->name()) {
      return Status::AlreadyExists(std::string("QueryEngine: backend '") +
                                   backend->name() + "' already registered");
    }
  }
  backends_.push_back(std::move(backend));
  return Status::OK();
}

Status QueryEngine::LoadCircuit(const neuro::Circuit& circuit) {
  if (loaded_) {
    return Status::AlreadyExists("QueryEngine: circuit already loaded");
  }
  NEURODB_RETURN_NOT_OK(options_.Validate());
  NEURODB_RETURN_NOT_OK(circuit.Validate());

  neuro::SegmentDataset all =
      circuit.FlattenSegments(neuro::NeuriteFilter::kAll);
  if (all.empty()) {
    return Status::InvalidArgument("QueryEngine: circuit has no segments");
  }
  resolver_.AddDataset(all);

  // Join inputs for synapse discovery.
  neuro::SegmentDataset axons =
      circuit.FlattenSegments(neuro::NeuriteFilter::kAxons);
  neuro::SegmentDataset dendrites =
      circuit.FlattenSegments(neuro::NeuriteFilter::kDendrites);
  axons_ = touch::JoinInput::FromSegments(std::move(axons.segments),
                                          std::move(axons.ids));
  dendrites_ = touch::JoinInput::FromSegments(std::move(dendrites.segments),
                                              std::move(dendrites.ids));

  return FinishLoad(all.Elements());
}

Status QueryEngine::LoadElements(geom::ElementVec elements) {
  if (loaded_) {
    return Status::AlreadyExists("QueryEngine: circuit already loaded");
  }
  NEURODB_RETURN_NOT_OK(options_.Validate());
  // An empty set is a valid starting point: the engine is populated purely
  // through ApplyUpdates (every backend builds with an empty base).
  return FinishLoad(std::move(elements));
}

Status QueryEngine::FinishLoad(geom::ElementVec elements) {
  // Durable engines initialize their data directory before any backend
  // builds: disk-backed stores land inside it. Open() arrives here with
  // durability_ already attached to the existing directory.
  if (options_.durability.enabled() && durability_ == nullptr) {
    auto dm = DurabilityManager::Create(options_.durability);
    NEURODB_RETURN_NOT_OK(dm.status());
    durability_ = std::move(*dm);
  }
  if (durability_ != nullptr && options_.durability.disk_backends) {
    for (auto& backend : backends_) {
      NEURODB_RETURN_NOT_OK(
          backend->AttachStores(durability_->BackendStoreFactory()));
    }
  }
  // WAL-before-build: the birth dataset becomes durable before any backend
  // (or the initial checkpoint below) depends on it. The checkpoint
  // truncates the record away, so only an engine that crashes before its
  // first checkpoint — notably one created *empty* and populated through
  // updates — ever replays it.
  if (durability_ != nullptr && !recovering_) {
    NEURODB_RETURN_NOT_OK(durability_->LogLoad(0, elements));
  }

  num_segments_ = elements.size();
  domain_ = Aabb();
  // A previous failed load may have left partial entries behind — ghost
  // ids here would poison update validation (and retries) forever.
  live_bounds_.clear();
  live_bounds_.reserve(elements.size());
  for (const auto& e : elements) {
    domain_.Extend(e.bounds);
    if (!live_bounds_.emplace(e.id, e.bounds).second) {
      return Status::InvalidArgument("QueryEngine: duplicate element id");
    }
  }

  for (auto& backend : backends_) {
    NEURODB_RETURN_NOT_OK(backend->Build(elements));
    backend->SetVersionRetention(options_.retained_versions);
  }

  // Worker pool for batch lanes and shard fan-out.
  if (options_.num_threads > 1) {
    thread_pool_ = std::make_unique<exec::ThreadPool>(options_.num_threads);
    sharded_->set_thread_pool(thread_pool_.get());
  }

  // Persistent warm-path state: the pool manager owns one named pool set
  // per backend (created eagerly so the sharded backend's per-shard pools
  // exist from the first query) and the result cache serves kDelta. The
  // cache requires the exact FLAT configuration: with rescue=false a
  // kFlat delta answer could be incomplete, and one such insert would
  // poison delta answers for every backend (the cache is
  // backend-agnostic) — so the approximate configuration disables it,
  // exactly as Session::Open does for session caches.
  pool_manager_ = std::make_unique<storage::PoolManager>(options_.pool_pages,
                                                         options_.cost);
  warm_pools_ = BackendPools(pool_manager_.get());
  result_cache_ = std::make_unique<cache::ResultCache>(
      EffectiveResultCacheBoxes());

  // Per-backend counters (now that RegisterBackend is closed): resolved
  // once, parallel to backends_, recorded by ExecuteOn/ExecuteKnnOn.
  if (metrics_ != nullptr) {
    backend_metrics_.clear();
    backend_metrics_.reserve(backends_.size());
    for (const auto& backend : backends_) {
      const std::string prefix = std::string("backend.") + backend->name();
      BackendMetrics bm;
      bm.queries = metrics_->counter(prefix + ".queries");
      bm.pages_read = metrics_->counter(prefix + ".pages_read");
      bm.results = metrics_->counter(prefix + ".results");
      backend_metrics_.push_back(bm);
    }
  }

  loaded_ = true;

  // A freshly loaded durable engine is immediately recoverable: base.ndb
  // holds the load set and the WAL is empty. Recovery skips this (its base
  // is already on disk; replay still has to run against it).
  if (durability_ != nullptr && !recovering_) {
    NEURODB_RETURN_NOT_OK(Checkpoint());
  }
  return Status::OK();
}

Status QueryEngine::ValidateBatchLocked(
    std::span<const UpdateRequest> updates,
    std::unordered_map<geom::ElementId, bool>* overlay) const {
  // Validate the whole batch against the live id set before touching any
  // backend — the batch applies atomically or not at all. `local` tracks
  // intra-batch dependencies (insert-then-move of one id is fine) and is
  // merged into `overlay` only on success, so a rejected batch in a commit
  // group leaves no trace for the batches validated after it.
  std::unordered_map<geom::ElementId, bool> local;  // id -> alive after ops
  auto alive = [&](geom::ElementId id) {
    auto it = local.find(id);
    if (it != local.end()) return it->second;
    it = overlay->find(id);
    if (it != overlay->end()) return it->second;
    return live_bounds_.find(id) != live_bounds_.end();
  };
  for (const UpdateRequest& update : updates) {
    switch (update.kind) {
      case UpdateKind::kInsert:
        if (!update.bounds.IsValid()) {
          return Status::InvalidArgument(
              "QueryEngine::ApplyUpdates: insert with invalid bounds");
        }
        if (alive(update.id)) {
          return Status::AlreadyExists(
              "QueryEngine::ApplyUpdates: insert of a live id");
        }
        local[update.id] = true;
        break;
      case UpdateKind::kErase:
        if (!alive(update.id)) {
          return Status::NotFound(
              "QueryEngine::ApplyUpdates: erase of an unknown id");
        }
        local[update.id] = false;
        break;
      case UpdateKind::kMove:
        if (!update.bounds.IsValid()) {
          return Status::InvalidArgument(
              "QueryEngine::ApplyUpdates: move with invalid bounds");
        }
        if (!alive(update.id)) {
          return Status::NotFound(
              "QueryEngine::ApplyUpdates: move of an unknown id");
        }
        local[update.id] = true;
        break;
    }
  }
  for (const auto& [id, live] : local) (*overlay)[id] = live;
  return Status::OK();
}

Result<UpdateReport> QueryEngine::ApplyValidatedLocked(
    std::span<const UpdateRequest> updates, storage::Epoch next) {
  // Dirty region + live-id map first (erase/move dirty needs the *old*
  // bounds): writer-private bookkeeping, invisible to readers.
  UpdateReport report;
  for (const UpdateRequest& update : updates) {
    switch (update.kind) {
      case UpdateKind::kInsert:
        report.dirty.Extend(update.bounds);
        live_bounds_[update.id] = update.bounds;
        ++num_segments_;
        break;
      case UpdateKind::kErase:
        report.dirty.Extend(live_bounds_[update.id]);
        live_bounds_.erase(update.id);
        --num_segments_;
        break;
      case UpdateKind::kMove:
        report.dirty.Extend(live_bounds_[update.id]);
        report.dirty.Extend(update.bounds);
        live_bounds_[update.id] = update.bounds;
        break;
    }
    ++report.applied;
  }

  // Built-in backends cannot fail ApplyBatch once built; a custom backend
  // that claims SupportsUpdates but errors mid-apply leaves the registry
  // half-mutated — kAll parity would be silently broken forever, so the
  // engine poisons itself instead (every later call fails loudly).
  // Each backend applies the whole batch to its pending delta, then
  // publishes ONE immutable snapshot at the new epoch — readers pinned at
  // `next - 1` keep resolving their retained version, readers arriving
  // after the epoch store below see the new one.
  std::vector<UpdateRequest> batch(updates.begin(), updates.end());
  for (auto& backend : backends_) {
    Status applied = backend->ApplyBatch(batch, next);
    if (!applied.ok()) {
      corrupted_.store(true, std::memory_order_release);
      return Status::Internal(
          "QueryEngine::ApplyUpdates: backend failed mid-apply, engine state "
          "is inconsistent — discard this engine (" +
          applied.ToString() + ")");
    }
  }

  // Publication point: every backend has the new version, so the epoch may
  // become visible. Readers that loaded the old epoch nanoseconds ago are
  // fine — its snapshot stays retained.
  pool_manager_->AdvanceEpochTo(next);
  epoch_.store(next, std::memory_order_release);

  {
    std::lock_guard<std::mutex> cache_lock(cache_mu_);
    uint64_t invalidated0 = result_cache_->stats().invalidated_boxes;
    result_cache_->AdvanceEpoch(next, report.dirty);
    report.invalidated_boxes =
        result_cache_->stats().invalidated_boxes - invalidated0;
  }
  update_log_.Append(next, report.dirty);
  report.epoch = next;

  obs::Bump(em_.update_batches);
  obs::Add(em_.update_ops, report.applied);
  obs::Add(em_.update_invalidated_boxes, report.invalidated_boxes);
  MaybeScheduleCheckpointLocked();
  return report;
}

Result<UpdateReport> QueryEngine::ApplyUpdatesLocked(
    std::span<const UpdateRequest> updates) {
  NEURODB_RETURN_NOT_OK(RequireLoaded("ApplyUpdates"));
  if (updates.empty()) {
    return Status::InvalidArgument("QueryEngine::ApplyUpdates: empty batch");
  }

  // Mutability is all-or-nothing across the registry: a half-applied batch
  // (mutable built-ins updated, a read-only custom backend not) would break
  // kAll parity permanently, so refuse up front, before anything applies.
  for (const auto& backend : backends_) {
    if (!backend->SupportsUpdates()) {
      return Status::Unimplemented(
          std::string("QueryEngine::ApplyUpdates: backend '") +
          backend->name() + "' is read-only");
    }
  }

  std::unordered_map<geom::ElementId, bool> overlay;
  NEURODB_RETURN_NOT_OK(ValidateBatchLocked(updates, &overlay));

  const storage::Epoch next = epoch_.load(std::memory_order_relaxed) + 1;

  // The batch becomes crash-proof BEFORE any backend mutates: the WAL
  // record (stamped with the epoch this batch will create) is written —
  // and, except under SyncPolicy::kNone, fsync'd — here, so an
  // acknowledged batch survives any later crash. If the append fails,
  // nothing has been touched and the batch is cleanly rejected. Replay
  // routes the same batches back through this method with recovering_
  // set — they are already on disk.
  if (durability_ != nullptr && !recovering_) {
    const bool sync = options_.durability.sync != SyncPolicy::kNone;
    NEURODB_RETURN_NOT_OK(durability_->LogUpdates(next, updates, sync));
    if (sync) {
      obs::Bump(em_.wal_fsync);
      obs::Record(em_.commit_group_size, 1);
    }
  }

  return ApplyValidatedLocked(updates, next);
}

void QueryEngine::CommitGroupLocked(std::unique_lock<std::mutex>&) {
  const size_t want = std::max<size_t>(1, options_.durability.group_max_batches);
  // Publish a member's completion: `done` flips under group_mu_ and wakes
  // the parked owner. The owner may return (destroying the PendingCommit)
  // the moment this releases group_mu_ — never touch `pending` after.
  auto complete = [this](PendingCommit* pending) {
    {
      std::lock_guard<std::mutex> queue_lock(group_mu_);
      pending->done = true;
    }
    group_cv_.notify_all();
  };
  std::vector<PendingCommit*> group;
  {
    std::unique_lock<std::mutex> queue_lock(group_mu_);
    if (group_queue_.size() < want && options_.durability.group_hold_us > 0) {
      // Hold the group open briefly: every writer that queues up inside
      // the window rides this fsync instead of paying its own. The wait
      // happens with commit_mu_ held — followers enqueue and notify
      // without it (they only block on commit_mu_ *after* queueing).
      group_cv_.wait_for(
          queue_lock,
          std::chrono::microseconds(options_.durability.group_hold_us),
          [&] { return group_queue_.size() >= want; });
    }
    while (!group_queue_.empty() && group.size() < want) {
      group.push_back(group_queue_.front());
      group_queue_.pop_front();
    }
  }
  if (group.empty()) return;

  // Gate checks shared by every member (batch-independent, so one answer
  // serves the whole group).
  Status gate = RequireLoaded("ApplyUpdates");
  if (gate.ok()) {
    for (const auto& backend : backends_) {
      if (!backend->SupportsUpdates()) {
        gate = Status::Unimplemented(
            std::string("QueryEngine::ApplyUpdates: backend '") +
            backend->name() + "' is read-only");
        break;
      }
    }
  }
  if (!gate.ok()) {
    for (PendingCommit* pending : group) {
      pending->result = gate;
      complete(pending);
    }
    return;
  }

  // Validate in arrival order against the cumulative overlay: batch k may
  // depend on batch k-1's effects (its inserts are "alive" here), exactly
  // as if the batches had committed back to back. Accepted batches take
  // consecutive epochs; rejected ones answer immediately and leave the
  // overlay untouched.
  const storage::Epoch base_epoch = epoch_.load(std::memory_order_relaxed);
  std::unordered_map<geom::ElementId, bool> overlay;
  std::vector<PendingCommit*> accepted;
  std::vector<storage::WriteAheadLog::PendingRecord> records;
  for (PendingCommit* pending : group) {
    Status valid =
        pending->updates.empty()
            ? Status::InvalidArgument(
                  "QueryEngine::ApplyUpdates: empty batch")
            : ValidateBatchLocked(pending->updates, &overlay);
    if (!valid.ok()) {
      pending->result = valid;
      complete(pending);
      continue;
    }
    const storage::Epoch epoch =
        base_epoch + 1 + static_cast<storage::Epoch>(accepted.size());
    records.push_back({epoch, EncodeUpdateBatch(pending->updates)});
    accepted.push_back(pending);
  }
  if (accepted.empty()) return;

  // The whole group becomes crash-proof in ONE WAL write + ONE fsync —
  // the amortization that is the point of kGroup. On failure nothing was
  // appended and nothing applies: every accepted batch is rejected with
  // the append error, exactly like a failed kPerBatch append.
  Status logged = durability_->LogUpdateGroup(records);
  if (!logged.ok()) {
    for (PendingCommit* pending : accepted) {
      pending->result = logged;
      complete(pending);
    }
    return;
  }
  obs::Bump(em_.wal_fsync);
  obs::Record(em_.commit_group_size, accepted.size());

  // Apply in epoch order. A backend failure poisons the engine (see
  // ApplyValidatedLocked); the batches after it are durable in the WAL but
  // cannot apply — they fail with the poison status, like every later call.
  Status poison = Status::OK();
  for (size_t i = 0; i < accepted.size(); ++i) {
    PendingCommit* pending = accepted[i];
    if (!poison.ok()) {
      pending->result = poison;
      complete(pending);
      continue;
    }
    Result<UpdateReport> applied = ApplyValidatedLocked(
        pending->updates,
        base_epoch + 1 + static_cast<storage::Epoch>(i));
    if (!applied.ok()) poison = applied.status();
    pending->result = std::move(applied);
    complete(pending);
  }
}

Result<UpdateReport> QueryEngine::ApplyUpdates(
    std::span<const UpdateRequest> updates) {
  // Commit latency as the caller experiences it: the clock starts before
  // the commit lock, so queueing (and, under kGroup, riding a group) is
  // part of it.
  Timer wall;

  const bool grouped = durability_ != nullptr && !recovering_ &&
                       options_.durability.sync == SyncPolicy::kGroup;
  if (!grouped) {
    // One committing batch at a time; readers are NOT excluded — they
    // answer at their pinned epoch while this batch publishes the next.
    std::lock_guard<std::mutex> commit(commit_mu_);
    Result<UpdateReport> result = ApplyUpdatesLocked(updates);
    if (result.ok()) {
      obs::Record(em_.update_latency_us, wall.ElapsedNanos() / 1000);
    }
    return result;
  }

  // Group commit: queue first, then try for the commit lock. Whoever
  // wins leads the group — drains the queue (this entry included, or a
  // later leader's turn picks it up), appends every accepted batch in one
  // WAL write + one fsync, applies in order, and fills each entry's
  // result. Followers park on group_cv_, NEVER on the commit lock:
  // `done` is published under group_mu_, so an acknowledged writer
  // returns (and can re-submit into the next group) without convoying
  // behind the next leader — the property that lets a group actually
  // refill to `group_max_batches` writers in steady state.
  NEURODB_RETURN_NOT_OK(RequireLoaded("ApplyUpdates"));
  if (updates.empty()) {
    return Status::InvalidArgument("QueryEngine::ApplyUpdates: empty batch");
  }
  PendingCommit pending;
  pending.updates = updates;
  {
    std::lock_guard<std::mutex> queue_lock(group_mu_);
    group_queue_.push_back(&pending);
  }
  group_cv_.notify_all();
  for (;;) {
    {
      std::unique_lock<std::mutex> queue_lock(group_mu_);
      if (pending.done) break;
    }
    std::unique_lock<std::mutex> commit(commit_mu_, std::try_to_lock);
    if (commit.owns_lock()) {
      CommitGroupLocked(commit);
      continue;  // re-check done — a leader may not have drained us yet
    }
    // Someone else leads. The bounded wait covers the lost-wakeup window
    // between the done-check above and parking; on timeout the loop just
    // retries leadership.
    std::unique_lock<std::mutex> queue_lock(group_mu_);
    group_cv_.wait_for(queue_lock, std::chrono::microseconds(200),
                       [&] { return pending.done; });
  }
  if (pending.result.ok()) {
    obs::Record(em_.update_latency_us, wall.ElapsedNanos() / 1000);
  }
  return std::move(pending.result);
}

std::future<Result<UpdateReport>> QueryEngine::ApplyUpdatesAsync(
    std::vector<UpdateRequest> updates) {
  return MutationPool()->Submit(
      [this, batch = std::move(updates)]() -> Result<UpdateReport> {
        return ApplyUpdates(batch);
      });
}

Status QueryEngine::Compact() {
  Timer wall;
  {
    std::lock_guard<std::mutex> commit(commit_mu_);
    NEURODB_RETURN_NOT_OK(RequireLoaded("Compact"));
    const storage::Epoch next = epoch_.load(std::memory_order_relaxed) + 1;
    // The rebuild's epoch advance must stay replayable even though its
    // checkpoint now runs *after* the commit lock drops (and may never
    // complete): log an op-less epoch bump first. If even that single
    // append fails, abort before anything mutates.
    if (durability_ != nullptr && !recovering_) {
      NEURODB_RETURN_NOT_OK(durability_->LogEpochBump(next));
    }
    {
      // Exclude readers for the rebuild: folding a delta replaces page
      // layouts and clears every retained version — the one transition a
      // pinned snapshot cannot survive. Queries and session steps hold
      // this lock shared, so they are either fully before or fully after.
      std::unique_lock<std::shared_mutex> exclusive(compact_mu_);
      for (auto& backend : backends_) {
        NEURODB_RETURN_NOT_OK(backend->Compact());
      }
      // The physical page layout is new; every warm pool caches the old
      // one. (Session pools re-fetch lazily through the store-epoch
      // check.)
      pool_manager_->EvictAll();
      // Re-seed the version rings before the new epoch becomes visible:
      // the first reader pinning `next` must find a snapshot to resolve.
      for (auto& backend : backends_) {
        backend->PublishVersion(next);
      }
      pool_manager_->AdvanceEpochTo(next);
      epoch_.store(next, std::memory_order_release);
    }
    // Results are unchanged, so cached result boxes stay valid — only the
    // epoch stamp advances (the empty dirty box invalidates nothing).
    {
      std::lock_guard<std::mutex> cache_lock(cache_mu_);
      result_cache_->AdvanceEpoch(next, Aabb());
    }
    update_log_.Append(next, Aabb());
  }
  // Compaction is the durable checkpoint: base.ndb becomes the compacted
  // snapshot at the new epoch and the covered WAL prefix drops. The
  // commit lock is released first — the streaming rewrite lets writers
  // keep committing (their records land past the cut).
  if (durability_ != nullptr) {
    NEURODB_RETURN_NOT_OK(CheckpointStreaming());
  }
  obs::Bump(em_.compact_count);
  obs::Record(em_.compact_latency_us, wall.ElapsedNanos() / 1000);
  return Status::OK();
}

std::future<Status> QueryEngine::CompactAsync() {
  return MutationPool()->Submit([this] { return Compact(); });
}

Status QueryEngine::Checkpoint() { return CheckpointStreaming(); }

std::future<Status> QueryEngine::CheckpointAsync() {
  return MutationPool()->Submit([this] { return CheckpointStreaming(); });
}

void QueryEngine::MaybeScheduleCheckpointLocked() {
  if (durability_ == nullptr || recovering_) return;
  const uint64_t threshold = options_.durability.checkpoint_wal_bytes;
  if (threshold == 0) return;
  if (durability_->wal().end_offset() < threshold) return;
  // At most one size-triggered checkpoint queued or running: the flag
  // clears when it finishes, and the next commit past the threshold
  // re-arms it.
  if (checkpoint_pending_.exchange(true, std::memory_order_acq_rel)) return;
  MutationPool()->Submit([this] {
    Status status = CheckpointStreaming();
    checkpoint_pending_.store(false, std::memory_order_release);
    return status;
  });
}

Status QueryEngine::CheckpointStreaming() {
  if (durability_ == nullptr) {
    return Status::InvalidArgument(
        "QueryEngine::Checkpoint: engine is not durable (set "
        "EngineOptions::durability.dir or use Open)");
  }
  // One checkpoint at a time, and outermost: a concurrent Compact blocks
  // here holding nothing, never inside commit_mu_.
  std::lock_guard<std::mutex> checkpoint(checkpoint_mu_);
  Timer wall;
  const storage::IoStats io_before = durability_->io();

  // Phase 1 — pin, under a brief commit_mu_ hold: the epoch, the FLAT
  // backend's published delta snapshot (immutable; together with its base
  // list it IS the live set at that epoch) and the WAL cut point (every
  // record at or before it has epoch <= pinned). compact_mu_ is taken
  // shared *before* commit_mu_ drops so no Compact can swap the base list
  // out from under the stream.
  std::shared_lock<std::shared_mutex> no_compact(compact_mu_, std::defer_lock);
  storage::Epoch pinned = 0;
  DeltaSnapshot snap;
  uint64_t wal_cut = 0;
  {
    std::lock_guard<std::mutex> commit(commit_mu_);
    NEURODB_RETURN_NOT_OK(RequireLoaded("Checkpoint"));
    no_compact.lock();
    pinned = epoch_.load(std::memory_order_relaxed);
    snap = flat_->LatestDelta();
    wal_cut = durability_->wal().end_offset();
  }

  // Phase 2 — stream, with readers and writers running: merge the
  // immutable base list with the pinned delta's inserts in ascending id
  // order, skipping dead base ids, one page chunk at a time. Nothing here
  // touches engine state later commits mutate; base.ndb staging is
  // copy-on-write, so abandoning on error leaves the committed base
  // intact.
  {
    auto stream = durability_->BeginCheckpoint();
    if (!stream.ok()) {
      no_compact.unlock();
      return stream.status();
    }
    const engine::DeltaIndex* delta = snap.delta.get();
    const geom::ElementVec& base = flat_->base_elements();
    static const std::map<ElementId, Aabb> kNoInserts;
    const std::map<ElementId, Aabb>& inserts =
        delta != nullptr ? delta->inserts() : kNoInserts;
    auto insert_it = inserts.begin();
    const auto insert_end = inserts.end();
    Status streamed = Status::OK();
    auto append_inserts_below = [&](ElementId limit, bool all) -> Status {
      while (insert_it != insert_end && (all || insert_it->first < limit)) {
        NEURODB_RETURN_NOT_OK((*stream)->Append(
            geom::SpatialElement{insert_it->first, insert_it->second}));
        ++insert_it;
      }
      return Status::OK();
    };
    for (const geom::SpatialElement& element : base) {
      streamed = append_inserts_below(element.id, false);
      if (!streamed.ok()) break;
      if (delta != nullptr && delta->IsDead(element.id)) continue;
      streamed = (*stream)->Append(element);
      if (!streamed.ok()) break;
    }
    if (streamed.ok()) streamed = append_inserts_below(0, true);
    if (streamed.ok()) streamed = (*stream)->Finish();
    no_compact.unlock();
    if (!streamed.ok()) return streamed;
  }

  // Phase 3 — swap, back under commit_mu_ (and only now: taking it while
  // still holding compact_mu_ shared would deadlock against a Compact
  // holding commit_mu_ and waiting for compact_mu_ exclusive): commit the
  // staged base at the pinned epoch, drop the covered WAL prefix, and
  // flush the backend page files so a clean shutdown's directory is fully
  // consistent.
  {
    std::lock_guard<std::mutex> commit(commit_mu_);
    NEURODB_RETURN_NOT_OK(durability_->CommitCheckpoint(pinned, wal_cut));
    std::unique_lock<std::shared_mutex> exclusive(compact_mu_);
    for (auto& backend : backends_) {
      for (storage::PageStore* store : backend->Stores()) {
        NEURODB_RETURN_NOT_OK(store->Flush());
      }
    }
  }

  const storage::IoStats io_after = durability_->io();
  obs::Add(em_.checkpoint_bytes_written,
           io_after.bytes_written - io_before.bytes_written);
  obs::Add(em_.checkpoint_fsyncs, io_after.fsyncs - io_before.fsyncs);
  obs::Bump(em_.checkpoint_count);
  obs::Record(em_.checkpoint_latency_us, wall.ElapsedNanos() / 1000);
  return Status::OK();
}

Result<std::unique_ptr<QueryEngine>> QueryEngine::Open(
    const std::string& dir, EngineOptions options, RecoveryReport* report) {
  options.durability.dir = dir;
  auto engine = std::make_unique<QueryEngine>(std::move(options));
  NEURODB_RETURN_NOT_OK(engine->Recover(report));
  return engine;
}

Status QueryEngine::ApplyEpochBump(storage::Epoch e) {
  // A replayed kWalKindEpochBump: the previous incarnation's Compact
  // advanced the epoch but its checkpoint never committed. The rebuilt
  // state already holds the right live set (base + replayed batches);
  // only the epoch sequence needs the advance so later records stay
  // consecutive.
  for (auto& backend : backends_) backend->PublishVersion(e);
  pool_manager_->AdvanceEpochTo(e);
  epoch_.store(e, std::memory_order_release);
  {
    std::lock_guard<std::mutex> cache_lock(cache_mu_);
    result_cache_->AdvanceEpoch(e, Aabb());
  }
  update_log_.Append(e, Aabb());
  return Status::OK();
}

Status QueryEngine::Recover(RecoveryReport* report) {
  NEURODB_RETURN_NOT_OK(options_.Validate());
  auto dm = DurabilityManager::Attach(options_.durability);
  NEURODB_RETURN_NOT_OK(dm.status());
  durability_ = std::move(*dm);

  // The base scan's read window is bounded by the engine's own pool
  // budget: recovery of a dataset far larger than the pool never holds
  // more than the pool would.
  const uint64_t scan_window =
      std::min<uint64_t>(options_.pool_pages, 1024) *
      options_.durability.block_bytes;
  NEURODB_ASSIGN_OR_RETURN(geom::ElementVec base,
                           durability_->LoadBase(scan_window));
  const storage::Epoch ckpt = durability_->checkpoint_epoch();

  // An engine that crashed before its first checkpoint has an empty
  // base.ndb — its birth dataset lives in the WAL's load record instead
  // (FinishLoad logs it before building). Pre-scan for it so the backends
  // build over the right base; the main replay below then skips it.
  if (base.empty() && ckpt == 0) {
    storage::WriteAheadLog::ReplayStats scan;
    NEURODB_RETURN_NOT_OK(durability_->Replay(
        [](storage::Epoch, const std::vector<UpdateRequest>&) {
          return Status::OK();
        },
        &scan,
        [&base](storage::Epoch, geom::ElementVec elements) {
          base = std::move(elements);
          return Status::OK();
        }));
  }
  const size_t base_elements = base.size();

  // Rebuild every backend over the checkpointed snapshot through the
  // normal load path; recovering_ suppresses FinishLoad's initial
  // checkpoint and ApplyUpdates' re-logging below.
  recovering_ = true;
  Status loaded = LoadElements(std::move(base));
  if (!loaded.ok()) {
    recovering_ = false;
    return loaded;
  }

  // Resume at the persisted epoch: recovery must never hand out an epoch
  // the previous incarnation already stamped onto results.
  pool_manager_->AdvanceEpochTo(ckpt);
  epoch_.store(pool_manager_->epoch(), std::memory_order_release);
  result_cache_->AdvanceEpoch(epoch(), Aabb());

  // Replay the WAL tail through ApplyUpdates. Records at or below the
  // checkpoint epoch are already folded into base.ndb (a crash between a
  // checkpoint's base commit and its WAL truncate leaves them behind);
  // past that, epochs must run consecutively or the log is damaged in a
  // way a torn tail cannot explain. A load record was consumed by the
  // pre-scan above (or is covered by a later checkpoint) — skip it. An
  // epoch bump advances the epoch without ops (a Compact whose checkpoint
  // never committed) and does not count as a replayed batch.
  size_t batches = 0;
  storage::WriteAheadLog::ReplayStats stats;
  Status replayed = durability_->Replay(
      [&](storage::Epoch e, const std::vector<UpdateRequest>& ops) -> Status {
        if (e <= ckpt) return Status::OK();
        if (e != epoch() + 1) {
          return Status::Corruption(
              "QueryEngine::Open: WAL record at epoch " + std::to_string(e) +
              " does not follow engine epoch " + std::to_string(epoch()));
        }
        NEURODB_RETURN_NOT_OK(ApplyUpdates(ops).status());
        ++batches;
        return Status::OK();
      },
      &stats,
      [](storage::Epoch, geom::ElementVec) { return Status::OK(); },
      [&](storage::Epoch e) -> Status {
        if (e <= ckpt) return Status::OK();
        if (e != epoch() + 1) {
          return Status::Corruption(
              "QueryEngine::Open: WAL epoch bump at epoch " +
              std::to_string(e) + " does not follow engine epoch " +
              std::to_string(epoch()));
        }
        return ApplyEpochBump(e);
      });
  recovering_ = false;
  NEURODB_RETURN_NOT_OK(replayed);

  // Drop a torn final record for good: the next append lands cleanly after
  // the last intact one.
  NEURODB_RETURN_NOT_OK(durability_->TruncateTornTail());

  if (report != nullptr) {
    report->checkpoint_epoch = ckpt;
    report->base_elements = base_elements;
    report->replayed_batches = batches;
    report->torn_tail = stats.torn_tail;
    report->dropped_bytes = stats.dropped_bytes;
  }
  return Status::OK();
}

storage::IoStats QueryEngine::IoTotals() const {
  storage::IoStats total;
  for (const auto& backend : backends_) total += backend->IoTotals();
  if (durability_ != nullptr) total += durability_->io();
  return total;
}

obs::MetricsSnapshot QueryEngine::MetricsSnapshot() {
  if (metrics_ == nullptr) return obs::MetricsSnapshot{};
  obs::MetricsRegistry* m = metrics_.get();
  if (loaded_) {
    // Sampled gauges: lower layers are not instrumented on their hot paths
    // (a query's pool fetch costs zero extra when nobody looks) — their
    // cumulative state is read here instead, under the same locks their
    // writers hold. Lock order matches ApplyUpdates/Execute:
    // commit -> warm -> cache.
    m->gauge("engine.epoch")->Set(epoch());
    m->gauge("engine.backends")->Set(backends_.size());
    {
      std::lock_guard<std::mutex> commit(commit_mu_);
      m->gauge("engine.live_elements")->Set(num_segments_);
      m->gauge("engine.delta_records")->Set(DeltaSize());
    }
    {
      std::lock_guard<std::mutex> warm_lock(warm_mu_);
      const storage::PoolManagerStats pool_stats = pool_manager_->Stats();
      m->gauge("pool.pools")->Set(pool_stats.pools);
      m->gauge("pool.pages_cached")->Set(pool_stats.pages_cached);
      m->gauge("pool.hits")->Set(pool_stats.hits);
      m->gauge("pool.misses")->Set(pool_stats.misses);
      m->gauge("pool.evictions")->Set(pool_stats.evictions);
    }
    {
      std::lock_guard<std::mutex> cache_lock(cache_mu_);
      const cache::CacheStats& cache_stats = result_cache_->stats();
      m->gauge("result_cache.lookups")->Set(cache_stats.lookups);
      m->gauge("result_cache.hits")->Set(cache_stats.hits);
      m->gauge("result_cache.misses")->Set(cache_stats.misses);
      m->gauge("result_cache.insertions")->Set(cache_stats.insertions);
      m->gauge("result_cache.evictions")->Set(cache_stats.evictions);
      m->gauge("result_cache.invalidated_boxes")
          ->Set(cache_stats.invalidated_boxes);
    }
    // Physical I/O: atomic store counters, safe to read anywhere.
    const storage::IoStats io = IoTotals();
    m->gauge("io.bytes_read")->Set(io.bytes_read);
    m->gauge("io.bytes_written")->Set(io.bytes_written);
    m->gauge("io.fsyncs")->Set(io.fsyncs);
    if (durability_ != nullptr) {
      const storage::IoStats wal = durability_->io();
      m->gauge("durability.bytes_read")->Set(wal.bytes_read);
      m->gauge("durability.bytes_written")->Set(wal.bytes_written);
      m->gauge("durability.fsyncs")->Set(wal.fsyncs);
    }
  }
  if (slow_log_ != nullptr) {
    m->gauge("slow_log.retained")->Set(slow_log_->Entries().size());
    m->gauge("slow_log.total")->Set(slow_log_->total_recorded());
  }
  return m->Snapshot();
}

size_t QueryEngine::DeltaSize() const {
  size_t total = 0;
  for (const auto& backend : backends_) total += backend->DeltaSize();
  return total;
}

Status QueryEngine::RequireLoaded(const char* op) const {
  if (corrupted_) {
    return Status::Internal(std::string("QueryEngine::") + op +
                            ": engine poisoned by a failed update apply — "
                            "discard this engine");
  }
  if (!loaded_) {
    return Status::InvalidArgument(std::string("QueryEngine::") + op +
                                   ": no circuit loaded");
  }
  return Status::OK();
}

std::vector<const SpatialBackend*> QueryEngine::Select(
    BackendChoice choice) const {
  std::vector<const SpatialBackend*> out;
  switch (choice) {
    case BackendChoice::kFlat:
      out.push_back(flat_);
      break;
    case BackendChoice::kRTree:
      out.push_back(rtree_);
      break;
    case BackendChoice::kGrid:
      out.push_back(grid_);
      break;
    case BackendChoice::kSharded:
      out.push_back(sharded_);
      break;
    case BackendChoice::kAll:
      for (const auto& backend : backends_) out.push_back(backend.get());
      break;
  }
  return out;
}

scout::SessionOptions QueryEngine::EffectiveSessionOptions() const {
  scout::SessionOptions session_options = options_.session;
  session_options.cost = options_.cost;
  return session_options;
}

size_t QueryEngine::EffectiveResultCacheBoxes() const {
  return options_.flat.rescue ? options_.result_cache_boxes : 0;
}

Status QueryEngine::ValidateRequest(const RangeRequest& request,
                                    const char* op) const {
  if (!request.box.IsValid()) {
    return Status::InvalidArgument(std::string("QueryEngine::") + op +
                                   ": invalid box (lo > hi)");
  }
  return Status::OK();
}

Status QueryEngine::ValidateRequest(const KnnRequest& request,
                                    const char* op) const {
  if (request.k == 0) {
    return Status::InvalidArgument(std::string("QueryEngine::") + op +
                                   ": k must be > 0");
  }
  if (!geom::IsFinitePoint(request.point)) {
    return Status::InvalidArgument(std::string("QueryEngine::") + op +
                                   ": non-finite query point");
  }
  return Status::OK();
}

std::vector<storage::PoolSet*> QueryEngine::BackendPools(
    storage::PoolManager* manager) const {
  std::vector<storage::PoolSet*> pools;
  pools.reserve(backends_.size());
  for (const auto& backend : backends_) {
    pools.push_back(manager->GetOrCreate(backend->name(), backend->Stores()));
  }
  return pools;
}

storage::PoolSet* QueryEngine::PoolFor(
    const SpatialBackend* backend,
    const std::vector<storage::PoolSet*>& pools) const {
  for (size_t i = 0; i < backends_.size(); ++i) {
    if (backends_[i].get() == backend) return pools[i];
  }
  return nullptr;
}

size_t QueryEngine::BackendIndex(const SpatialBackend* backend) const {
  for (size_t i = 0; i < backends_.size(); ++i) {
    if (backends_[i].get() == backend) return i;
  }
  return 0;
}

void QueryEngine::AddPoolAndDiskSpans(obs::Trace* trace, int backend_span,
                                      const storage::PoolCounters& pool_delta,
                                      const storage::IoStats& io_delta) {
  // The pool/disk layers are not separately timed (they interleave with
  // index work), so their spans share the backend span's window and carry
  // the counter deltas as tags. Copy the window out first: AddCompleted
  // grows the span vector, invalidating references into it.
  const uint64_t window_start =
      trace->spans()[static_cast<size_t>(backend_span)].start_ns;
  const uint64_t window_duration =
      trace->spans()[static_cast<size_t>(backend_span)].duration_ns;
  const int pool_span = trace->AddCompleted("pool", backend_span,
                                            window_start, window_duration);
  trace->Tag(pool_span, "hits", pool_delta.hits);
  trace->Tag(pool_span, "misses", pool_delta.misses);
  trace->Tag(pool_span, "evictions", pool_delta.evictions);
  if (io_delta.bytes_read != 0 || io_delta.bytes_written != 0 ||
      io_delta.fsyncs != 0) {
    const int disk_span = trace->AddCompleted("disk", pool_span,
                                              window_start, window_duration);
    trace->Tag(disk_span, "bytes_read", io_delta.bytes_read);
    trace->Tag(disk_span, "bytes_written", io_delta.bytes_written);
    trace->Tag(disk_span, "fsyncs", io_delta.fsyncs);
  }
}

Status QueryEngine::ExecuteOn(const RangeRequest& request,
                              ResultVisitor* visitor,
                              const std::vector<storage::PoolSet*>& pools,
                              SimClock* clock, obs::Trace* trace,
                              RangeReport* report) const {
  std::vector<const SpatialBackend*> selected = Select(request.backend);
  const bool parity_check = selected.size() > 1;
  std::vector<std::vector<ElementId>> id_sets;

  // The snapshot pin: resolve "latest" ONCE, before the first backend
  // runs, so every backend (and the parity check across them) answers the
  // same epoch even while a concurrent ApplyUpdates publishes the next.
  const storage::Epoch pinned =
      request.read_epoch == storage::kLatestEpoch
          ? epoch_.load(std::memory_order_acquire)
          : request.read_epoch;
  report->epoch = pinned;

  report->rows.reserve(selected.size());
  for (size_t k = 0; k < selected.size(); ++k) {
    const SpatialBackend* backend = selected[k];
    storage::PoolSet* pool = PoolFor(backend, pools);

    RangeRow row;
    row.method = backend->name();
    const int backend_span =
        trace != nullptr
            ? trace->Begin(std::string("backend:") + backend->name())
            : -1;
    const storage::PoolCounters pool0 = pool->Counters();
    uint64_t t0 = clock->NowMicros();
    storage::IoStats io0 = backend->IoTotals();

    Status status;
    if (parity_check) {
      id_sets.emplace_back();
      geom::VectorVisitor ids(&id_sets.back());
      // The primary backend additionally streams to the caller.
      geom::TeeVisitor tee(k == 0 ? visitor : nullptr, &ids);
      status = backend->RangeQueryAt(pinned, request.box, pool, tee,
                                     &row.stats);
    } else if (visitor != nullptr) {
      status = backend->RangeQueryAt(pinned, request.box, pool, *visitor,
                                     &row.stats);
    } else {
      geom::CountingVisitor count;
      status = backend->RangeQueryAt(pinned, request.box, pool, count,
                                     &row.stats);
    }
    NEURODB_RETURN_NOT_OK(status);

    row.stats.time_us = clock->NowMicros() - t0;
    const storage::IoStats io_delta = backend->IoTotals() - io0;
    const storage::PoolCounters pool_delta = pool->Counters() - pool0;
    report->io += io_delta;
    report->pool += pool_delta;
    if (!backend_metrics_.empty()) {
      const BackendMetrics& bm = backend_metrics_[BackendIndex(backend)];
      obs::Bump(bm.queries);
      obs::Add(bm.pages_read, row.stats.pages_read);
      obs::Add(bm.results, row.stats.results);
    }
    if (trace != nullptr) {
      trace->Tag(backend_span, "epoch", pinned);
      trace->Tag(backend_span, "pages_read", row.stats.pages_read);
      trace->Tag(backend_span, "elements_scanned", row.stats.elements_scanned);
      trace->Tag(backend_span, "results", row.stats.results);
      trace->End(backend_span);
      AddPoolAndDiskSpans(trace, backend_span, pool_delta, io_delta);
    }
    report->rows.push_back(std::move(row));
  }

  report->results = report->rows.empty() ? 0 : report->rows[0].stats.results;
  report->results_match = true;
  if (parity_check) {
    for (auto& ids : id_sets) std::sort(ids.begin(), ids.end());
    for (size_t k = 1; k < id_sets.size(); ++k) {
      if (id_sets[k] != id_sets[0]) report->results_match = false;
    }
  }
  return Status::OK();
}

Status QueryEngine::ExecuteKnnOn(const KnnRequest& request,
                                 const std::vector<storage::PoolSet*>& pools,
                                 SimClock* clock, obs::Trace* trace,
                                 KnnReport* report) const {
  std::vector<const SpatialBackend*> selected = Select(request.backend);
  const bool parity_check = selected.size() > 1;
  const storage::Epoch pinned =
      request.read_epoch == storage::kLatestEpoch
          ? epoch_.load(std::memory_order_acquire)
          : request.read_epoch;
  report->epoch = pinned;

  report->rows.reserve(selected.size());
  for (size_t k = 0; k < selected.size(); ++k) {
    const SpatialBackend* backend = selected[k];
    storage::PoolSet* pool = PoolFor(backend, pools);

    RangeRow row;
    row.method = backend->name();
    const int backend_span =
        trace != nullptr
            ? trace->Begin(std::string("backend:") + backend->name())
            : -1;
    const storage::PoolCounters pool0 = pool->Counters();
    uint64_t t0 = clock->NowMicros();
    storage::IoStats io0 = backend->IoTotals();

    std::vector<geom::KnnHit> hits;
    NEURODB_RETURN_NOT_OK(backend->KnnQueryAt(pinned, request.point, request.k,
                                              pool, &hits, &row.stats));

    row.stats.time_us = clock->NowMicros() - t0;
    const storage::IoStats io_delta = backend->IoTotals() - io0;
    const storage::PoolCounters pool_delta = pool->Counters() - pool0;
    report->io += io_delta;
    report->pool += pool_delta;
    if (!backend_metrics_.empty()) {
      const BackendMetrics& bm = backend_metrics_[BackendIndex(backend)];
      obs::Bump(bm.queries);
      obs::Add(bm.pages_read, row.stats.pages_read);
      obs::Add(bm.results, hits.size());
    }
    if (trace != nullptr) {
      trace->Tag(backend_span, "epoch", pinned);
      trace->Tag(backend_span, "pages_read", row.stats.pages_read);
      trace->Tag(backend_span, "elements_scanned", row.stats.elements_scanned);
      trace->Tag(backend_span, "results", hits.size());
      trace->End(backend_span);
      AddPoolAndDiskSpans(trace, backend_span, pool_delta, io_delta);
    }
    report->rows.push_back(std::move(row));

    if (k == 0) {
      report->hits = std::move(hits);
    } else if (parity_check && hits != report->hits) {
      // Hits are fully ordered by (distance, id) in every backend, so a
      // mismatch anywhere — id, distance or cardinality — is a divergence.
      report->results_match = false;
    }
  }
  return Status::OK();
}

const SpatialBackend* QueryEngine::DeltaBackend(
    const RangeRequest& request, const cache::ResultCache* cache) const {
  if (request.cache != CachePolicy::kDelta || cache == nullptr ||
      !cache->enabled()) {
    return nullptr;
  }
  // Cached entries are only valid at the cache's live epoch — a request
  // explicitly pinned elsewhere must really execute.
  if (request.read_epoch != storage::kLatestEpoch) return nullptr;
  std::vector<const SpatialBackend*> selected = Select(request.backend);
  return selected.size() == 1 ? selected[0] : nullptr;
}

Status QueryEngine::ExecuteDeltaOn(const RangeRequest& request,
                                   const SpatialBackend* backend,
                                   ResultVisitor* visitor,
                                   const std::vector<storage::PoolSet*>& pools,
                                   SimClock* clock, cache::ResultCache* cache,
                                   obs::Trace* trace,
                                   RangeReport* report) const {
  storage::PoolSet* pool = PoolFor(backend, pools);

  RangeRow row;
  row.method = backend->name();
  const int backend_span =
      trace != nullptr
          ? trace->Begin(std::string("backend:") + backend->name())
          : -1;
  const storage::PoolCounters pool0 = pool->Counters();
  uint64_t t0 = clock->NowMicros();
  storage::IoStats io0 = backend->IoTotals();

  // Pin residual queries at the cache's epoch, not the engine's: every
  // resident entry is valid exactly there, so covered fragments and
  // residual answers merge into one consistent snapshot even if a writer
  // published a newer version mid-plan. (The caller holds cache_mu_, so
  // the cache epoch cannot advance under the plan.)
  const storage::Epoch pinned = cache->epoch();

  cache::DeltaPlan plan;
  NEURODB_ASSIGN_OR_RETURN(
      geom::ElementVec merged,
      cache::DeltaPlanner::Answer(
          *cache, request.box,
          [&](const Aabb& residual, CollectingVisitor* out) {
            RangeStats residual_stats;
            NEURODB_RETURN_NOT_OK(backend->RangeQueryAt(
                pinned, residual, pool, *out, &residual_stats));
            row.stats.pages_read += residual_stats.pages_read;
            row.stats.elements_scanned += residual_stats.elements_scanned;
            return Status::OK();
          },
          &plan));

  if (visitor != nullptr) {
    for (const geom::SpatialElement& e : merged) {
      visitor->Visit(e.id, e.bounds);
    }
  }

  row.stats.results = merged.size();
  row.stats.time_us = clock->NowMicros() - t0;
  const storage::IoStats io_delta = backend->IoTotals() - io0;
  const storage::PoolCounters pool_delta = pool->Counters() - pool0;
  report->io += io_delta;
  report->pool += pool_delta;
  if (!backend_metrics_.empty()) {
    const BackendMetrics& bm = backend_metrics_[BackendIndex(backend)];
    obs::Bump(bm.queries);
    obs::Add(bm.pages_read, row.stats.pages_read);
    obs::Add(bm.results, row.stats.results);
  }
  if (trace != nullptr) {
    trace->Tag(backend_span, "epoch", pinned);
    trace->Tag(backend_span, "pages_read", row.stats.pages_read);
    trace->Tag(backend_span, "results", row.stats.results);
    trace->Tag(backend_span, "cache_hit_fraction",
               std::to_string(plan.covered_fraction));
    trace->End(backend_span);
    AddPoolAndDiskSpans(trace, backend_span, pool_delta, io_delta);
  }
  report->rows.push_back(std::move(row));
  report->results = merged.size();
  report->results_match = true;
  report->epoch = pinned;
  report->cache_hit_fraction = plan.covered_fraction;
  report->delta_volume_fraction = plan.residual_fraction;

  cache->Insert(request.box, std::move(merged));
  return Status::OK();
}

std::shared_ptr<obs::Trace> QueryEngine::MaybeTrace(bool requested,
                                                    const char* root) const {
  // Traces are an obs feature: with metrics off the engine never builds
  // one (request.trace is ignored — the report's trace stays null).
  if (metrics_ == nullptr) return nullptr;
  if (!requested && slow_log_ == nullptr) return nullptr;
  return std::make_shared<obs::Trace>(root);
}

void QueryEngine::FinishRangeQuery(bool keep_trace, uint64_t wall_us,
                                   std::shared_ptr<obs::Trace> trace,
                                   RangeReport* report) const {
  obs::Bump(em_.range.count);
  obs::Add(em_.range.results, report->results);
  uint64_t pages = 0;
  for (const RangeRow& row : report->rows) pages += row.stats.pages_read;
  obs::Add(em_.range.pages_read, pages);
  obs::Record(em_.range.latency_us, wall_us);
  if (trace == nullptr) return;
  trace->Tag(0, "epoch", report->epoch);
  trace->Tag(0, "results", report->results);
  trace->Tag(0, "pages_read", pages);
  trace->Tag(0, "cache_hit_fraction",
             std::to_string(report->cache_hit_fraction));
  trace->End(0);
  if (slow_log_ != nullptr && wall_us >= slow_log_->threshold_us()) {
    obs::Bump(em_.slow_queries);
    slow_log_->Record("range", wall_us, trace);
  }
  if (keep_trace) report->trace = std::move(trace);
}

void QueryEngine::FinishKnnQuery(bool keep_trace, uint64_t wall_us,
                                 std::shared_ptr<obs::Trace> trace,
                                 KnnReport* report) const {
  obs::Bump(em_.knn.count);
  obs::Add(em_.knn.results, report->hits.size());
  uint64_t pages = 0;
  for (const RangeRow& row : report->rows) pages += row.stats.pages_read;
  obs::Add(em_.knn.pages_read, pages);
  obs::Record(em_.knn.latency_us, wall_us);
  if (trace == nullptr) return;
  trace->Tag(0, "epoch", report->epoch);
  trace->Tag(0, "results", report->hits.size());
  trace->Tag(0, "pages_read", pages);
  trace->End(0);
  if (slow_log_ != nullptr && wall_us >= slow_log_->threshold_us()) {
    obs::Bump(em_.slow_queries);
    slow_log_->Record("knn", wall_us, trace);
  }
  if (keep_trace) report->trace = std::move(trace);
}

Result<RangeReport> QueryEngine::Execute(const RangeRequest& request,
                                         ResultVisitor& visitor) {
  NEURODB_RETURN_NOT_OK(RequireLoaded("Execute"));
  NEURODB_RETURN_NOT_OK(ValidateRequest(request, "Execute"));
  std::shared_ptr<obs::Trace> trace = MaybeTrace(request.trace, "range");
  Timer wall;
  // Shared with other readers and with ApplyUpdates; only Compact excludes
  // us (it is the one writer that destroys pinned snapshots).
  std::shared_lock<std::shared_mutex> read_lock(compact_mu_);

  RangeReport report;
  if (request.cache != CachePolicy::kCold) {
    // The warm pools and the engine result cache are shared mutable state;
    // warm requests take turns (cold requests below run fully concurrent).
    std::lock_guard<std::mutex> warm_lock(warm_mu_);
    if (const SpatialBackend* backend =
            DeltaBackend(request, result_cache_.get())) {
      std::lock_guard<std::mutex> cache_lock(cache_mu_);
      NEURODB_RETURN_NOT_OK(ExecuteDeltaOn(
          request, backend, &visitor, warm_pools_, pool_manager_->clock(),
          result_cache_.get(), trace.get(), &report));
    } else {
      NEURODB_RETURN_NOT_OK(ExecuteOn(request, &visitor, warm_pools_,
                                      pool_manager_->clock(), trace.get(),
                                      &report));
    }
  } else {
    // Cold: a fresh pool per backend, as the paper's per-query cost model.
    storage::PoolManager local(options_.pool_pages, options_.cost);
    std::vector<storage::PoolSet*> pools = BackendPools(&local);
    NEURODB_RETURN_NOT_OK(ExecuteOn(request, &visitor, pools, local.clock(),
                                    trace.get(), &report));
  }
  if (metrics_ != nullptr) {
    FinishRangeQuery(request.trace, wall.ElapsedNanos() / 1000,
                     std::move(trace), &report);
  }
  return report;
}

Result<RangeReport> QueryEngine::Execute(const RangeRequest& request) {
  CountingVisitor ignore;
  return Execute(request, ignore);
}

Result<KnnReport> QueryEngine::Execute(const KnnRequest& request) {
  NEURODB_RETURN_NOT_OK(RequireLoaded("Execute"));
  NEURODB_RETURN_NOT_OK(ValidateRequest(request, "Execute"));
  std::shared_ptr<obs::Trace> trace = MaybeTrace(request.trace, "knn");
  Timer wall;
  std::shared_lock<std::shared_mutex> read_lock(compact_mu_);

  KnnReport report;
  if (request.cache != CachePolicy::kCold) {
    std::lock_guard<std::mutex> warm_lock(warm_mu_);
    NEURODB_RETURN_NOT_OK(ExecuteKnnOn(request, warm_pools_,
                                       pool_manager_->clock(), trace.get(),
                                       &report));
  } else {
    storage::PoolManager local(options_.pool_pages, options_.cost);
    std::vector<storage::PoolSet*> pools = BackendPools(&local);
    NEURODB_RETURN_NOT_OK(
        ExecuteKnnOn(request, pools, local.clock(), trace.get(), &report));
  }
  if (metrics_ != nullptr) {
    FinishKnnQuery(request.trace, wall.ElapsedNanos() / 1000, std::move(trace),
                   &report);
  }
  return report;
}

Status QueryEngine::ExecuteBatchSlice(
    std::span<const QueryRequest> requests, size_t begin, size_t end,
    storage::PoolManager* manager, const std::vector<storage::PoolSet*>& pools,
    SimClock* clock, cache::ResultCache* cache,
    std::vector<QueryReport>* reports, BatchStats* stats) const {
  for (size_t i = begin; i < end; ++i) {
    const QueryRequest& request = requests[i];
    CachePolicy policy =
        std::visit([](const auto& r) { return r.cache; }, request);
    if (policy == CachePolicy::kCold) {
      // Through the manager, not the raw pools: its eviction statistics
      // must account for the cold reset of the (persistent) warm state.
      manager->EvictAll();
      if (cache != nullptr) cache->Clear();
    }

    if (const auto* range = std::get_if<RangeRequest>(&request)) {
      std::shared_ptr<obs::Trace> trace = MaybeTrace(range->trace, "range");
      Timer wall;
      RangeReport report;
      if (const SpatialBackend* backend = DeltaBackend(*range, cache)) {
        NEURODB_RETURN_NOT_OK(ExecuteDeltaOn(*range, backend, nullptr, pools,
                                             clock, cache, trace.get(),
                                             &report));
        ++stats->delta_requests;
        stats->cache_hit_fraction += report.cache_hit_fraction;
        stats->delta_volume_fraction += report.delta_volume_fraction;
      } else {
        NEURODB_RETURN_NOT_OK(
            ExecuteOn(*range, nullptr, pools, clock, trace.get(), &report));
      }
      for (const RangeRow& row : report.rows) {
        stats->pages_read += row.stats.pages_read;
      }
      stats->results += report.results;
      if (metrics_ != nullptr) {
        // Batch entries record into the same thread-safe registry the
        // foreground path uses — concurrent lanes included (this is the
        // sanctioned cross-thread merge; common/Stats stays lane-local).
        FinishRangeQuery(range->trace, wall.ElapsedNanos() / 1000,
                         std::move(trace), &report);
      }
      (*reports)[i] = std::move(report);
    } else {
      const KnnRequest& knn = std::get<KnnRequest>(request);
      std::shared_ptr<obs::Trace> trace = MaybeTrace(knn.trace, "knn");
      Timer wall;
      KnnReport report;
      NEURODB_RETURN_NOT_OK(
          ExecuteKnnOn(knn, pools, clock, trace.get(), &report));
      for (const RangeRow& row : report.rows) {
        stats->pages_read += row.stats.pages_read;
      }
      stats->results += report.hits.size();
      if (metrics_ != nullptr) {
        FinishKnnQuery(knn.trace, wall.ElapsedNanos() / 1000, std::move(trace),
                       &report);
      }
      (*reports)[i] = std::move(report);
    }
  }
  return Status::OK();
}

Result<MixedBatchResult> QueryEngine::ExecuteBatch(
    std::span<const QueryRequest> requests) {
  NEURODB_RETURN_NOT_OK(RequireLoaded("ExecuteBatch"));
  for (const QueryRequest& request : requests) {
    NEURODB_RETURN_NOT_OK(std::visit(
        [&](const auto& r) { return ValidateRequest(r, "ExecuteBatch"); },
        request));
  }

  Timer batch_wall;
  std::shared_lock<std::shared_mutex> read_lock(compact_mu_);

  MixedBatchResult out;
  out.reports.resize(requests.size());
  out.aggregate.queries = requests.size();

  // Sum → mean for the delta coverage fractions once a batch is assembled.
  auto normalize_delta = [](BatchStats* stats) {
    if (stats->delta_requests == 0) return;
    double n = static_cast<double>(stats->delta_requests);
    stats->cache_hit_fraction /= n;
    stats->delta_volume_fraction /= n;
  };

  const bool parallel = thread_pool_ != nullptr && options_.num_threads > 1 &&
                        requests.size() > 1;
  if (!parallel) {
    // Serial: the batch runs over the engine's *persistent* pools and
    // result cache — warm state survives across batches (kCold requests
    // still evict before executing). Counters and time are reported as
    // deltas over the batch, so the aggregate describes this batch alone.
    // Both shared structures are held for the whole batch (lock order:
    // compact_mu_ -> warm_mu_ -> cache_mu_).
    std::lock_guard<std::mutex> warm_lock(warm_mu_);
    std::lock_guard<std::mutex> cache_lock(cache_mu_);
    const std::vector<storage::PoolSet*>& pools = warm_pools_;
    SimClock* clock = pool_manager_->clock();
    uint64_t t0 = clock->NowMicros();
    storage::PoolCounters counters0;
    for (storage::PoolSet* pool : pools) counters0 += pool->Counters();
    NEURODB_RETURN_NOT_OK(ExecuteBatchSlice(
        requests, 0, requests.size(), pool_manager_.get(), pools, clock,
        result_cache_.get(), &out.reports, &out.aggregate));
    out.aggregate.time_us = clock->NowMicros() - t0;
    out.aggregate.critical_path_us = out.aggregate.time_us;
    out.aggregate.lanes = 1;
    storage::PoolCounters counters;
    for (storage::PoolSet* pool : pools) counters += pool->Counters();
    counters = counters - counters0;
    out.aggregate.pool_hits = counters.hits;
    out.aggregate.pool_misses = counters.misses;
    out.aggregate.pool_evictions = counters.evictions;
    normalize_delta(&out.aggregate);
    obs::Bump(em_.batch_count);
    obs::Add(em_.batch_queries, out.aggregate.queries);
    obs::Add(em_.batch_lanes, 1);
    obs::Record(em_.batch_latency_us, batch_wall.ElapsedNanos() / 1000);
    return out;
  }

  // Parallel: contiguous request lanes, one PoolManager (pool family +
  // clock) and one private result cache per lane. Lane-local counters
  // merge in lane order, so the output is independent of worker
  // scheduling; reports land in their request slot directly.
  std::vector<exec::LaneRange> lanes =
      exec::PartitionLanes(requests.size(), options_.num_threads);
  std::vector<BatchStats> lane_stats(lanes.size());
  exec::ParallelExecutor executor(thread_pool_.get());
  Status status = executor.Run(lanes, [&](const exec::LaneRange& lane) {
    Timer lane_wall;
    storage::PoolManager lane_manager(options_.pool_pages, options_.cost);
    std::vector<storage::PoolSet*> pools = BackendPools(&lane_manager);
    cache::ResultCache lane_cache(EffectiveResultCacheBoxes());
    // Private lane caches start empty but stamp entries at the engine's
    // current epoch (nothing to invalidate — the empty dirty box).
    lane_cache.AdvanceEpoch(epoch(), Aabb());
    BatchStats& local = lane_stats[lane.lane];
    NEURODB_RETURN_NOT_OK(ExecuteBatchSlice(
        requests, lane.begin, lane.end, &lane_manager, pools,
        lane_manager.clock(), &lane_cache, &out.reports, &local));
    local.time_us = lane_manager.clock()->NowMicros();
    // Lane pool counters stay lane-local Stats (single-writer: this
    // thread); the cross-lane merge happens on lane-ordered copies below
    // and in the shared (thread-safe) registry right here — never by
    // pointing several lanes at one Stats instance.
    const storage::PoolCounters counters = [&pools] {
      storage::PoolCounters total;
      for (storage::PoolSet* pool : pools) total += pool->Counters();
      return total;
    }();
    local.pool_hits = counters.hits;
    local.pool_misses = counters.misses;
    local.pool_evictions = counters.evictions;
    obs::Record(em_.batch_lane_time_us, lane_wall.ElapsedNanos() / 1000);
    return Status::OK();
  });
  NEURODB_RETURN_NOT_OK(status);

  out.aggregate.lanes = lanes.size();
  for (const BatchStats& local : lane_stats) {
    out.aggregate.pages_read += local.pages_read;
    out.aggregate.results += local.results;
    out.aggregate.time_us += local.time_us;
    out.aggregate.critical_path_us =
        std::max(out.aggregate.critical_path_us, local.time_us);
    out.aggregate.pool_hits += local.pool_hits;
    out.aggregate.pool_misses += local.pool_misses;
    out.aggregate.pool_evictions += local.pool_evictions;
    out.aggregate.delta_requests += local.delta_requests;
    out.aggregate.cache_hit_fraction += local.cache_hit_fraction;
    out.aggregate.delta_volume_fraction += local.delta_volume_fraction;
  }
  normalize_delta(&out.aggregate);
  obs::Bump(em_.batch_count);
  obs::Add(em_.batch_queries, out.aggregate.queries);
  obs::Add(em_.batch_lanes, out.aggregate.lanes);
  obs::Record(em_.batch_latency_us, batch_wall.ElapsedNanos() / 1000);
  return out;
}

Result<BatchResult> QueryEngine::ExecuteBatch(
    std::span<const RangeRequest> requests) {
  std::vector<QueryRequest> mixed(requests.begin(), requests.end());
  NEURODB_ASSIGN_OR_RETURN(MixedBatchResult mixed_result,
                           ExecuteBatch(std::span<const QueryRequest>(mixed)));
  BatchResult out;
  out.aggregate = mixed_result.aggregate;
  out.reports.reserve(mixed_result.reports.size());
  for (QueryReport& report : mixed_result.reports) {
    out.reports.push_back(std::move(std::get<RangeReport>(report)));
  }
  return out;
}

Result<scout::SessionResult> QueryEngine::Execute(
    const WalkthroughRequest& request) {
  NEURODB_ASSIGN_OR_RETURN(Session session,
                           OpenSession(request.method, request.cache));
  for (const Aabb& query : request.queries) {
    NEURODB_RETURN_NOT_OK(session.Step(query).status());
  }
  return session.Summary();
}

Result<touch::JoinResult> QueryEngine::Execute(const JoinRequest& request) {
  NEURODB_RETURN_NOT_OK(RequireLoaded("Execute"));
  NEURODB_RETURN_NOT_OK(request.options.Validate());
  return touch::RunJoin(request.method, axons_, dendrites_, request.options);
}

Result<Session> QueryEngine::OpenSession(scout::PrefetchMethod method,
                                         CachePolicy cache) {
  NEURODB_RETURN_NOT_OK(RequireLoaded("OpenSession"));
  // An engine created empty (LoadElements({})) never built a FLAT index:
  // there is no crawl layout for a session to walk.
  if (!flat_->has_index()) {
    return Status::InvalidArgument(
        "QueryEngine::OpenSession: the FLAT base is empty — an engine "
        "populated purely through updates has no crawl layout to explore");
  }
  scout::SessionOptions session_options = EffectiveSessionOptions();
  // The policy argument governs, both ways: kCold must yield a genuinely
  // cold session (the harness's cold baselines depend on it) even when the
  // engine-wide session options enable caching — and result_cache_boxes
  // == 0 is the engine-wide kill switch, covering sessions too. Callers
  // who want the raw SessionOptions knobs use Session::Open directly.
  session_options.cache_results =
      cache != CachePolicy::kCold && EffectiveResultCacheBoxes() > 0;
  if (session_options.cache_results) {
    session_options.result_cache_boxes = options_.result_cache_boxes;
  }
  // Engine sessions are delta-aware: each step answers over the FLAT
  // backend's newest *published* delta snapshot and replays the update log
  // into the private result cache, so a session stays correct across
  // ApplyUpdates. Steps hold compact_mu_ shared (Compact excludes them for
  // the rebuild, after which the session re-fetches lazily through its
  // pool's store-epoch check instead of failing).
  // Session observability rides the engine's registry and slow-query log;
  // with metrics off the hooks stay empty and steps record nothing.
  SessionObs hooks;
  hooks.metrics = metrics_.get();
  hooks.slow_log = slow_log_.get();
  return Session::Open(&flat_->index(), flat_->store(), &resolver_, method,
                       session_options, flat_, &update_log_, &compact_mu_,
                       hooks);
}

}  // namespace engine
}  // namespace neurodb
