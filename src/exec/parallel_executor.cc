#include "exec/parallel_executor.h"

#include <exception>
#include <future>
#include <string>

namespace neurodb {
namespace exec {

namespace {

Status RunGuarded(const std::function<Status(const LaneRange&)>& fn,
                  const LaneRange& lane) {
  try {
    return fn(lane);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("ParallelExecutor: lane ") +
                            std::to_string(lane.lane) +
                            " threw: " + e.what());
  } catch (...) {
    return Status::Internal(std::string("ParallelExecutor: lane ") +
                            std::to_string(lane.lane) +
                            " threw a non-std exception");
  }
}

}  // namespace

std::vector<LaneRange> PartitionLanes(size_t n, size_t lanes) {
  std::vector<LaneRange> out;
  if (n == 0) return out;
  if (lanes == 0) lanes = 1;
  if (lanes > n) lanes = n;
  out.reserve(lanes);
  size_t base = n / lanes;
  size_t extra = n % lanes;
  size_t begin = 0;
  for (size_t lane = 0; lane < lanes; ++lane) {
    size_t len = base + (lane < extra ? 1 : 0);
    out.push_back(LaneRange{lane, begin, begin + len});
    begin += len;
  }
  return out;
}

Status ParallelExecutor::Run(
    const std::vector<LaneRange>& lanes,
    const std::function<Status(const LaneRange&)>& fn) const {
  if (lanes.empty()) return Status::OK();

  if (pool_ == nullptr || lanes.size() == 1 || ThreadPool::InWorker()) {
    // Inline, in lane order. Keep going after a failure so the caller sees
    // the same "every lane ran" postcondition as the pooled path.
    Status first = Status::OK();
    for (const LaneRange& lane : lanes) {
      Status status = RunGuarded(fn, lane);
      if (first.ok() && !status.ok()) first = std::move(status);
    }
    return first;
  }

  std::vector<std::future<Status>> futures;
  futures.reserve(lanes.size());
  for (const LaneRange& lane : lanes) {
    futures.push_back(pool_->Submit([&fn, lane] {
      return RunGuarded(fn, lane);
    }));
  }
  Status first = Status::OK();
  for (std::future<Status>& future : futures) {
    Status status = future.get();
    if (first.ok() && !status.ok()) first = std::move(status);
  }
  return first;
}

}  // namespace exec
}  // namespace neurodb
