#include "exec/thread_pool.h"

namespace neurodb {
namespace exec {

namespace {

bool& InWorkerFlag() {
  static thread_local bool flag = false;
  return flag;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = num_threads == 0 ? 1 : num_threads;
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

size_t ThreadPool::NumPending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

bool ThreadPool::InWorker() { return InWorkerFlag(); }

void ThreadPool::WorkerLoop() {
  InWorkerFlag() = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures any exception into its future
  }
}

}  // namespace exec
}  // namespace neurodb
