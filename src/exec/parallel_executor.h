// NeuroDB — exec::ParallelExecutor: deterministic fan-out of an indexed
// workload across ThreadPool workers.
//
// A batch of N items is partitioned into contiguous *lanes* (PartitionLanes:
// the partition depends only on N and the lane count, never on timing).
// Each lane runs as one pool task over its own private state — the engine
// gives every lane its own buffer pools and simulated clock — so lanes
// never share mutable state and the per-item output is independent of
// scheduling. The caller merges per-lane results in lane order, which makes
// a parallel run bit-identical to executing the same lanes serially:
// exactly the property tests/exec_test.cc and the differential harness
// verify against the serial ExecuteBatch path.

#ifndef NEURODB_EXEC_PARALLEL_EXECUTOR_H_
#define NEURODB_EXEC_PARALLEL_EXECUTOR_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/status.h"
#include "exec/thread_pool.h"

namespace neurodb {
namespace exec {

/// One contiguous slice [begin, end) of a batch, owned by one worker.
struct LaneRange {
  size_t lane = 0;
  size_t begin = 0;
  size_t end = 0;

  size_t size() const { return end - begin; }
};

/// Split [0, n) into at most `lanes` contiguous, near-equal slices (the
/// first n % lanes slices are one longer). Deterministic in (n, lanes);
/// empty slices are never produced, so the result may have fewer than
/// `lanes` entries when n < lanes.
std::vector<LaneRange> PartitionLanes(size_t n, size_t lanes);

/// Runs one callable per lane, on a ThreadPool when available and inline
/// otherwise. Stateless apart from the pool pointer; reusable.
class ParallelExecutor {
 public:
  /// `pool` may be null — every Run then executes inline on the caller.
  explicit ParallelExecutor(ThreadPool* pool = nullptr) : pool_(pool) {}

  /// Execute fn(lane) for every lane and wait for all of them. Runs inline
  /// (in lane order) when there is no pool, only one lane, or the caller is
  /// itself a pool worker (nested fan-out would risk deadlock). Every lane
  /// runs even if an earlier lane fails; the returned status is the first
  /// non-OK result *in lane order* (not completion order), and an exception
  /// escaping `fn` is reported as an Internal status the same way.
  Status Run(const std::vector<LaneRange>& lanes,
             const std::function<Status(const LaneRange&)>& fn) const;

  ThreadPool* pool() const { return pool_; }

 private:
  ThreadPool* pool_;
};

}  // namespace exec
}  // namespace neurodb

#endif  // NEURODB_EXEC_PARALLEL_EXECUTOR_H_
