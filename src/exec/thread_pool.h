// NeuroDB — exec::ThreadPool: a fixed-size worker pool with a task queue,
// future-based results and graceful shutdown.
//
// This is the execution substrate of the parallel query paths: the engine's
// concurrent ExecuteBatch fans request lanes out over one pool, and
// ShardedBackend fans per-shard queries out over the same pool. Tasks are
// arbitrary callables; results and exceptions travel through std::future.
//
// Nesting rule: a task running *on* a pool worker must not block on more
// pool tasks (all workers could end up waiting on work only workers can
// run). Callers that might be invoked from a worker check
// ThreadPool::InWorker() and fall back to inline execution — see
// ShardedBackend, whose shard fan-out degrades to a serial loop inside
// ExecuteBatch lanes.

#ifndef NEURODB_EXEC_THREAD_POOL_H_
#define NEURODB_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace neurodb {
namespace exec {

/// Fixed-size thread pool. Threads start in the constructor and run until
/// destruction; the destructor is graceful — every task already queued is
/// completed before the workers join, so no future obtained from Submit is
/// ever abandoned.
class ThreadPool {
 public:
  /// Start `num_threads` workers (0 is clamped to 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue, then joins every worker.
  ~ThreadPool();

  size_t num_threads() const { return workers_.size(); }

  /// Tasks queued but not yet picked up by a worker (snapshot; for tests
  /// and introspection).
  size_t NumPending() const;

  /// True when the calling thread is a worker of *any* ThreadPool — the
  /// guard nested fan-outs use to run inline instead of deadlocking.
  static bool InWorker();

  /// Enqueue `fn` and return a future for its result. An exception thrown
  /// by `fn` is captured into the future and rethrown by get(). Submitting
  /// during shutdown runs the task inline on the submitting thread (the
  /// future is still valid) rather than losing it.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    bool run_inline = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        run_inline = true;  // run below, outside the lock
      } else {
        queue_.emplace_back([task] { (*task)(); });
      }
    }
    if (run_inline) {
      (*task)();
      return future;
    }
    cv_.notify_one();
    return future;
  }

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace exec
}  // namespace neurodb

#endif  // NEURODB_EXEC_THREAD_POOL_H_
