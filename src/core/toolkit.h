// NeuroDB — NeuroToolkit: the integrated demonstration tool.
//
// The paper demonstrates "a tool that integrates three spatial data
// management techniques": FLAT for range queries (Section 2), SCOUT for
// exploration (Section 3) and TOUCH for synapse discovery (Section 4).
// NeuroToolkit is that tool as a library facade: load a circuit once, then
//
//   * CompareRangeQuery — runs a query on FLAT and on a disk R-tree side by
//     side and reports the live statistics panel of Figure 3 (pages
//     retrieved, time, nodes per level);
//   * WalkThrough       — replays a navigation path with a chosen
//     prefetcher (Figure 6 statistics);
//   * FindSynapses      — joins axon segments against dendrite segments
//     with a chosen algorithm (Figure 7 statistics).

#ifndef NEURODB_CORE_TOOLKIT_H_
#define NEURODB_CORE_TOOLKIT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "flat/flat_index.h"
#include "geom/aabb.h"
#include "neuro/circuit.h"
#include "rtree/paged_rtree.h"
#include "scout/session.h"
#include "storage/page_store.h"
#include "touch/spatial_join.h"

namespace neurodb {
namespace core {

/// Toolkit configuration.
struct ToolkitOptions {
  flat::FlatOptions flat;
  /// The baseline disk-resident R-tree configuration.
  rtree::RTreeOptions rtree;
  /// Buffer pool capacity used for range query comparisons.
  size_t pool_pages = 4096;
  storage::DiskCostModel cost;
  scout::SessionOptions session;
};

/// One method's row of the Figure 3 panel.
struct RangeQueryRow {
  std::string method;
  uint64_t pages_read = 0;        // disk pages retrieved (cold cache)
  uint64_t time_us = 0;           // modeled time
  uint64_t results = 0;
  uint64_t elements_scanned = 0;  // candidates tested
  /// R-tree only: node fetches per level (leaf = index 0).
  std::vector<uint64_t> nodes_per_level;
};

/// Result of CompareRangeQuery.
struct RangeQueryReport {
  RangeQueryRow flat;
  RangeQueryRow rtree;
  /// Both methods returned the same element set (always true; checked).
  bool results_match = false;
};

/// The integrated tool.
class NeuroToolkit {
 public:
  explicit NeuroToolkit(ToolkitOptions options = ToolkitOptions());

  NeuroToolkit(const NeuroToolkit&) = delete;
  NeuroToolkit& operator=(const NeuroToolkit&) = delete;

  /// Flatten `circuit` into segment datasets, lay them out on simulated
  /// disk, and build both indexes (FLAT and the paged R-tree).
  Status LoadCircuit(const neuro::Circuit& circuit);

  bool loaded() const { return flat_.has_value(); }

  /// Demo exhibit 1 (Figures 2–4): run `box` on FLAT and on the R-tree,
  /// both from a cold buffer pool, and report the statistics panel.
  Result<RangeQueryReport> CompareRangeQuery(const geom::Aabb& box);

  /// Demo exhibit 2 (Figures 5–6): replay a query sequence with the given
  /// prefetching method.
  Result<scout::SessionResult> WalkThrough(
      const std::vector<geom::Aabb>& queries, scout::PrefetchMethod method);

  /// Demo exhibit 3 (Figure 7): find synapse candidates — axon segments
  /// within `options.epsilon` of dendrite segments — with `method`.
  Result<touch::JoinResult> FindSynapses(touch::JoinMethod method,
                                         const touch::JoinOptions& options);

  // Accessors for examples and tests.
  const geom::Aabb& domain() const { return domain_; }
  size_t NumSegments() const { return num_segments_; }
  const flat::FlatIndex& flat_index() const { return *flat_; }
  const rtree::PagedRTree& paged_rtree() const { return *paged_rtree_; }
  const neuro::SegmentResolver& resolver() const { return resolver_; }
  const touch::JoinInput& axons() const { return axons_; }
  const touch::JoinInput& dendrites() const { return dendrites_; }
  const ToolkitOptions& options() const { return options_; }

 private:
  ToolkitOptions options_;
  storage::PageStore flat_store_;
  storage::PageStore rtree_store_;
  std::optional<flat::FlatIndex> flat_;
  std::optional<rtree::PagedRTree> paged_rtree_;
  neuro::SegmentResolver resolver_;
  touch::JoinInput axons_;
  touch::JoinInput dendrites_;
  geom::Aabb domain_;
  size_t num_segments_ = 0;
};

}  // namespace core
}  // namespace neurodb

#endif  // NEURODB_CORE_TOOLKIT_H_
