// NeuroDB — NeuroToolkit: the integrated demonstration tool.
//
// The paper demonstrates "a tool that integrates three spatial data
// management techniques": FLAT for range queries (Section 2), SCOUT for
// exploration (Section 3) and TOUCH for synapse discovery (Section 4).
// NeuroToolkit is that tool as a library facade — kept as a thin
// compatibility shim over engine::QueryEngine, which owns the backends,
// page stores and buffer pools. New code should use QueryEngine directly
// (docs/API.md has the migration table):
//
//   * CompareRangeQuery — RangeRequest{BackendChoice::kAll} re-shaped into
//     the two-row Figure 3 panel;
//   * WalkThrough       — WalkthroughRequest (whole-path replay; use
//     QueryEngine::OpenSession for incremental exploration);
//   * FindSynapses      — JoinRequest.

#ifndef NEURODB_CORE_TOOLKIT_H_
#define NEURODB_CORE_TOOLKIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/query_engine.h"
#include "flat/flat_index.h"
#include "geom/aabb.h"
#include "neuro/circuit.h"
#include "rtree/paged_rtree.h"
#include "scout/session.h"
#include "storage/page_store.h"
#include "touch/spatial_join.h"

namespace neurodb {
namespace core {

/// Toolkit configuration.
struct ToolkitOptions {
  flat::FlatOptions flat;
  /// The baseline disk-resident R-tree configuration.
  rtree::RTreeOptions rtree;
  /// Buffer pool capacity used for range query comparisons.
  size_t pool_pages = 4096;
  storage::DiskCostModel cost;
  scout::SessionOptions session;

  /// The engine configuration this maps to.
  engine::EngineOptions ToEngineOptions() const;
};

/// One method's row of the Figure 3 panel.
struct RangeQueryRow {
  std::string method;
  uint64_t pages_read = 0;        // disk pages retrieved (cold cache)
  uint64_t time_us = 0;           // modeled time
  uint64_t results = 0;
  uint64_t elements_scanned = 0;  // candidates tested
  /// R-tree only: node fetches per level (leaf = index 0).
  std::vector<uint64_t> nodes_per_level;
};

/// Result of CompareRangeQuery.
struct RangeQueryReport {
  RangeQueryRow flat;
  RangeQueryRow rtree;
  /// Both methods returned the same element set (always true; checked).
  bool results_match = false;
};

/// The integrated tool (compatibility shim over engine::QueryEngine).
class NeuroToolkit {
 public:
  explicit NeuroToolkit(ToolkitOptions options = ToolkitOptions());

  NeuroToolkit(const NeuroToolkit&) = delete;
  NeuroToolkit& operator=(const NeuroToolkit&) = delete;

  /// Flatten `circuit` into segment datasets, lay them out on simulated
  /// disk, and build both indexes (FLAT and the paged R-tree).
  Status LoadCircuit(const neuro::Circuit& circuit);

  bool loaded() const { return engine_.loaded(); }

  /// Demo exhibit 1 (Figures 2–4): run `box` on FLAT and on the R-tree,
  /// both from a cold buffer pool, and report the statistics panel.
  Result<RangeQueryReport> CompareRangeQuery(const geom::Aabb& box);

  /// Demo exhibit 2 (Figures 5–6): replay a query sequence with the given
  /// prefetching method.
  Result<scout::SessionResult> WalkThrough(
      const std::vector<geom::Aabb>& queries, scout::PrefetchMethod method);

  /// Demo exhibit 3 (Figure 7): find synapse candidates — axon segments
  /// within `options.epsilon` of dendrite segments — with `method`.
  Result<touch::JoinResult> FindSynapses(touch::JoinMethod method,
                                         const touch::JoinOptions& options);

  /// The engine underneath — the full redesigned API (batching, sessions,
  /// streaming visitors, extra backends).
  engine::QueryEngine& engine() { return engine_; }
  const engine::QueryEngine& engine() const { return engine_; }

  // Accessors for examples and tests.
  const geom::Aabb& domain() const { return engine_.domain(); }
  size_t NumSegments() const { return engine_.NumSegments(); }
  const flat::FlatIndex& flat_index() const { return engine_.flat_index(); }
  const rtree::PagedRTree& paged_rtree() const {
    return engine_.paged_rtree();
  }
  const neuro::SegmentResolver& resolver() const {
    return engine_.resolver();
  }
  const touch::JoinInput& axons() const { return engine_.axons(); }
  const touch::JoinInput& dendrites() const { return engine_.dendrites(); }
  const ToolkitOptions& options() const { return options_; }

 private:
  ToolkitOptions options_;
  engine::QueryEngine engine_;
};

}  // namespace core
}  // namespace neurodb

#endif  // NEURODB_CORE_TOOLKIT_H_
