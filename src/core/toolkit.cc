#include "core/toolkit.h"

#include <algorithm>

#include "common/sim_clock.h"
#include "storage/buffer_pool.h"

namespace neurodb {
namespace core {

using geom::Aabb;
using geom::ElementId;

NeuroToolkit::NeuroToolkit(ToolkitOptions options)
    : options_(std::move(options)) {}

Status NeuroToolkit::LoadCircuit(const neuro::Circuit& circuit) {
  if (loaded()) {
    return Status::AlreadyExists("NeuroToolkit: circuit already loaded");
  }
  NEURODB_RETURN_NOT_OK(circuit.Validate());

  neuro::SegmentDataset all = circuit.FlattenSegments(neuro::NeuriteFilter::kAll);
  if (all.empty()) {
    return Status::InvalidArgument("NeuroToolkit: circuit has no segments");
  }
  num_segments_ = all.size();
  domain_ = all.Bounds();
  resolver_.AddDataset(all);

  geom::ElementVec elements = all.Elements();

  // FLAT over the data pages.
  NEURODB_ASSIGN_OR_RETURN(
      flat::FlatIndex index,
      flat::FlatIndex::Build(elements, &flat_store_, options_.flat));
  flat_.emplace(std::move(index));

  // The baseline: a disk-resident R-tree over the same elements.
  NEURODB_ASSIGN_OR_RETURN(rtree::RTree tree,
                           rtree::RTree::BulkLoadStr(elements, options_.rtree));
  NEURODB_ASSIGN_OR_RETURN(rtree::PagedRTree paged,
                           rtree::PagedRTree::Build(std::move(tree),
                                                    &rtree_store_));
  paged_rtree_.emplace(std::move(paged));

  // Join inputs for synapse discovery.
  neuro::SegmentDataset axons =
      circuit.FlattenSegments(neuro::NeuriteFilter::kAxons);
  neuro::SegmentDataset dendrites =
      circuit.FlattenSegments(neuro::NeuriteFilter::kDendrites);
  axons_ = touch::JoinInput::FromSegments(std::move(axons.segments),
                                          std::move(axons.ids));
  dendrites_ = touch::JoinInput::FromSegments(std::move(dendrites.segments),
                                              std::move(dendrites.ids));
  return Status::OK();
}

Result<RangeQueryReport> NeuroToolkit::CompareRangeQuery(const Aabb& box) {
  if (!loaded()) {
    return Status::InvalidArgument("NeuroToolkit: no circuit loaded");
  }
  RangeQueryReport report;

  // FLAT, cold pool.
  std::vector<ElementId> flat_results;
  {
    SimClock clock;
    storage::BufferPool pool(&flat_store_, options_.pool_pages, &clock,
                             options_.cost);
    flat::FlatQueryStats stats;
    NEURODB_RETURN_NOT_OK(
        flat_->RangeQuery(box, &pool, &flat_results, &stats));
    report.flat.method = "FLAT";
    report.flat.pages_read = stats.data_pages_read;
    report.flat.time_us = clock.NowMicros();
    report.flat.results = stats.results;
    report.flat.elements_scanned = stats.elements_scanned;
  }

  // R-tree, cold pool.
  std::vector<ElementId> rtree_results;
  {
    SimClock clock;
    storage::BufferPool pool(&rtree_store_, options_.pool_pages, &clock,
                             options_.cost);
    rtree::QueryStats stats;
    NEURODB_RETURN_NOT_OK(
        paged_rtree_->RangeQuery(box, &rtree_results, &pool, &stats));
    report.rtree.method = "R-Tree";
    report.rtree.pages_read = stats.nodes_visited;
    report.rtree.time_us = clock.NowMicros();
    report.rtree.results = stats.results;
    report.rtree.elements_scanned = stats.entries_tested;
    report.rtree.nodes_per_level = stats.nodes_per_level;
  }

  std::sort(flat_results.begin(), flat_results.end());
  std::sort(rtree_results.begin(), rtree_results.end());
  report.results_match = flat_results == rtree_results;
  if (!report.results_match) {
    return Status::Internal(
        "CompareRangeQuery: FLAT and R-tree results disagree");
  }
  return report;
}

Result<scout::SessionResult> NeuroToolkit::WalkThrough(
    const std::vector<Aabb>& queries, scout::PrefetchMethod method) {
  if (!loaded()) {
    return Status::InvalidArgument("NeuroToolkit: no circuit loaded");
  }
  scout::SessionOptions session_options = options_.session;
  session_options.cost = options_.cost;
  scout::WalkthroughSession session(&*flat_, &flat_store_, &resolver_,
                                    session_options);
  return session.Run(queries, method);
}

Result<touch::JoinResult> NeuroToolkit::FindSynapses(
    touch::JoinMethod method, const touch::JoinOptions& options) {
  if (!loaded()) {
    return Status::InvalidArgument("NeuroToolkit: no circuit loaded");
  }
  return touch::RunJoin(method, axons_, dendrites_, options);
}

}  // namespace core
}  // namespace neurodb
