#include "core/toolkit.h"

namespace neurodb {
namespace core {

using geom::Aabb;

engine::EngineOptions ToolkitOptions::ToEngineOptions() const {
  engine::EngineOptions options;
  options.flat = flat;
  options.rtree = rtree;
  options.pool_pages = pool_pages;
  options.cost = cost;
  options.session = session;
  return options;
}

NeuroToolkit::NeuroToolkit(ToolkitOptions options)
    : options_(std::move(options)), engine_(options_.ToEngineOptions()) {}

Status NeuroToolkit::LoadCircuit(const neuro::Circuit& circuit) {
  Status status = engine_.LoadCircuit(circuit);
  if (status.IsAlreadyExists()) {
    return Status::AlreadyExists("NeuroToolkit: circuit already loaded");
  }
  return status;
}

Result<RangeQueryReport> NeuroToolkit::CompareRangeQuery(const Aabb& box) {
  if (!loaded()) {
    return Status::InvalidArgument("NeuroToolkit: no circuit loaded");
  }
  engine::RangeRequest request;
  request.box = box;
  request.backend = engine::BackendChoice::kAll;
  request.cache = engine::CachePolicy::kCold;
  NEURODB_ASSIGN_OR_RETURN(engine::RangeReport engine_report,
                           engine_.Execute(request));
  if (!engine_report.results_match) {
    return Status::Internal(
        "CompareRangeQuery: FLAT and R-tree results disagree");
  }

  RangeQueryReport report;
  report.results_match = true;
  for (const engine::RangeRow& row : engine_report.rows) {
    RangeQueryRow* out = nullptr;
    if (row.method == "FLAT") {
      out = &report.flat;
    } else if (row.method == "R-Tree") {
      out = &report.rtree;
    } else {
      continue;  // extra registered backends have no panel slot
    }
    out->method = row.method;
    out->pages_read = row.stats.pages_read;
    out->time_us = row.stats.time_us;
    out->results = row.stats.results;
    out->elements_scanned = row.stats.elements_scanned;
    out->nodes_per_level = row.stats.nodes_per_level;
  }
  return report;
}

Result<scout::SessionResult> NeuroToolkit::WalkThrough(
    const std::vector<Aabb>& queries, scout::PrefetchMethod method) {
  if (!loaded()) {
    return Status::InvalidArgument("NeuroToolkit: no circuit loaded");
  }
  engine::WalkthroughRequest request;
  request.queries = queries;
  request.method = method;
  return engine_.Execute(request);
}

Result<touch::JoinResult> NeuroToolkit::FindSynapses(
    touch::JoinMethod method, const touch::JoinOptions& options) {
  if (!loaded()) {
    return Status::InvalidArgument("NeuroToolkit: no circuit loaded");
  }
  engine::JoinRequest request;
  request.method = method;
  request.options = options;
  return engine_.Execute(request);
}

}  // namespace core
}  // namespace neurodb
