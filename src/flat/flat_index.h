// NeuroDB — FlatIndex: FLAT range query execution for dense spatial data.
//
// Reproduces FLAT (Tauheed et al., ICDE'12; paper Section 2.1). The index
// has two parts:
//
//  * crawl pages — the dataset packed onto disk pages in a space-filling
//    order, plus a *neighborhood graph* linking pages whose MBRs intersect
//    ("information ... describing what spatial elements neighbor each
//    other");
//  * a small memory-resident *seed index* — an STR-packed R-tree over the
//    page MBRs, used only to find one page intersecting the query.
//
// Query execution: (1) seed phase — descend the seed tree to an arbitrary
// page intersecting the range (cost ~ tree height, density independent);
// (2) crawl phase — breadth-first walk of the neighborhood graph restricted
// to pages whose MBR intersects the range, reading exactly the data pages
// that contribute results (cost ~ result size, density independent).
//
// Completeness: the crawl reaches every intersecting page iff the page-MBR
// intersection graph restricted to the range is connected — true on the
// dense continuous tissue models FLAT targets. For arbitrary data the
// optional *rescue* pass (on by default) scans the memory-resident seed
// tree for unvisited intersecting pages and re-seeds the crawl, making
// results exact while leaving the disk-page I/O unchanged (every
// intersecting page is read exactly once either way). DESIGN.md Section 3
// discusses the trade-off; bench/ablation_flat_pages quantifies it.

#ifndef NEURODB_FLAT_FLAT_INDEX_H_
#define NEURODB_FLAT_FLAT_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "geom/aabb.h"
#include "geom/element.h"
#include "geom/knn.h"
#include "geom/visitor.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "storage/pagination.h"

namespace neurodb {
namespace flat {

/// Build-time options.
struct FlatOptions {
  /// Elements per crawl page (253 elements ~ one 8 KiB page).
  size_t elems_per_page = 253;
  /// Physical pack order of the crawl pages.
  storage::PackOrder pack = storage::PackOrder::kHilbert;
  /// Seed tree fanout.
  rtree::RTreeOptions seed_tree;
  /// Guarantee completeness on sparse / disconnected data (see header).
  bool rescue = true;

  Status Validate() const;
};

/// Per-query instrumentation (the demo's live FLAT panel, Figure 3).
struct FlatQueryStats {
  /// Crawl data pages fetched from disk — the headline I/O metric.
  uint64_t data_pages_read = 0;
  /// Seed-tree nodes visited in the seed phase (memory resident).
  uint64_t seed_nodes_visited = 0;
  /// Seed-tree nodes visited by the rescue completeness check.
  uint64_t rescue_nodes_visited = 0;
  /// Pages dequeued by the crawl (== data_pages_read).
  uint64_t crawl_steps = 0;
  /// Crawls started beyond the first seed (0 on connected/dense ranges).
  uint64_t extra_seeds = 0;
  /// kNN only: expanding rings examined before the answer stabilized.
  uint64_t knn_rings = 0;
  /// Elements scanned on fetched pages.
  uint64_t elements_scanned = 0;
  uint64_t results = 0;
};

/// The FLAT index. Build once over a dataset; query through a BufferPool.
class FlatIndex {
 public:
  /// Paginate `elements` into `store` and build the neighborhood graph and
  /// seed tree.
  static Result<FlatIndex> Build(const geom::ElementVec& elements,
                                 storage::PageStore* store,
                                 FlatOptions options = FlatOptions());

  FlatIndex(FlatIndex&&) = default;
  FlatIndex& operator=(FlatIndex&&) = default;

  /// Range query: streams each element intersecting `box` to `visitor`.
  /// Data pages are fetched through `pool` (this is the disk I/O).
  Status RangeQuery(const geom::Aabb& box, storage::BufferPool* pool,
                    geom::ResultVisitor& visitor,
                    FlatQueryStats* stats = nullptr) const;

  /// Legacy materializing form: appends matching ids to `out`.
  Status RangeQuery(const geom::Aabb& box, storage::BufferPool* pool,
                    std::vector<geom::ElementId>* out,
                    FlatQueryStats* stats = nullptr) const;

  /// Like RangeQuery, and additionally records the order in which crawl
  /// pages were visited (the demo's crawl-order visualization, Figure 4).
  Status RangeQueryTraced(const geom::Aabb& box, storage::BufferPool* pool,
                          geom::ResultVisitor& visitor,
                          std::vector<uint32_t>* page_visit_order,
                          FlatQueryStats* stats = nullptr) const;

  /// Legacy materializing form of RangeQueryTraced.
  Status RangeQueryTraced(const geom::Aabb& box, storage::BufferPool* pool,
                          std::vector<geom::ElementId>* out,
                          std::vector<uint32_t>* page_visit_order,
                          FlatQueryStats* stats = nullptr) const;

  /// k nearest neighbours of `p` by box distance, ties broken by id (the
  /// library-wide order of geom/knn.h). FLAT has no pointer hierarchy over
  /// the data, so the query is an *expanding-ring crawl*: grow a cube
  /// around `p`, pull the intersecting pages out of the memory-resident
  /// seed tree, fetch the unvisited ones through `pool`, and stop once the
  /// kth best distance is covered by the ring — every fetched page is a
  /// page a range query of that radius would have fetched. `hits` is
  /// cleared and filled ascending. k == 0 yields an empty answer; k larger
  /// than the dataset yields every element.
  ///
  /// `initial_radius_hint` (> 0 to take effect) replaces the density-based
  /// starting radius — exploration sessions pass the k-th best distance of
  /// the previous step's hit list, so a slowly moving query starts its
  /// first ring already tight (engine/session.h). The hint is purely a
  /// starting point: the ring still doubles until the k-th best distance
  /// is covered, so a wrong hint changes I/O, never the answer.
  Status Knn(const geom::Vec3& p, size_t k, storage::BufferPool* pool,
             std::vector<geom::KnnHit>* hits,
             FlatQueryStats* stats = nullptr,
             double initial_radius_hint = 0.0) const;

  /// Pages (as indexes into page order) whose MBR intersects `box`.
  /// Memory-only (seed tree); used by SCOUT to translate predicted query
  /// boxes into page prefetches.
  std::vector<uint32_t> PagesInRange(const geom::Aabb& box) const;

  size_t NumPages() const { return page_ids_.size(); }
  storage::PageId PageAt(uint32_t index) const { return page_ids_[index]; }
  const geom::Aabb& PageBounds(uint32_t index) const {
    return page_bounds_[index];
  }
  const std::vector<uint32_t>& NeighborsOf(uint32_t index) const {
    return neighbors_[index];
  }
  const geom::Aabb& domain() const { return domain_; }
  const rtree::RTree& seed_tree() const { return seed_tree_; }
  const FlatOptions& options() const { return options_; }

  /// Bytes of memory-resident metadata (seed tree + neighborhood lists) —
  /// FLAT's in-memory footprint, tiny relative to the data.
  size_t MetadataBytes() const;

  /// Structural checks: neighbor symmetry, no self-loops, neighbor MBRs
  /// intersect, seed tree covers every page.
  Status CheckInvariants() const;

 private:
  FlatIndex() = default;

  Status CrawlFrom(uint32_t start, const geom::Aabb& box,
                   storage::BufferPool* pool, geom::ResultVisitor& visitor,
                   std::vector<char>* visited,
                   std::vector<uint32_t>* visit_order,
                   FlatQueryStats* stats) const;

  std::vector<storage::PageId> page_ids_;
  std::vector<geom::Aabb> page_bounds_;
  std::vector<std::vector<uint32_t>> neighbors_;
  geom::Aabb domain_;
  rtree::RTree seed_tree_{rtree::RTreeOptions{}};
  FlatOptions options_;
};

}  // namespace flat
}  // namespace neurodb

#endif  // NEURODB_FLAT_FLAT_INDEX_H_
