#include "flat/flat_index.h"

#include <algorithm>
#include <cmath>
#include <deque>

namespace neurodb {
namespace flat {

using geom::Aabb;
using geom::ElementId;
using geom::ElementVec;
using geom::SpatialElement;

Status FlatOptions::Validate() const {
  if (elems_per_page == 0) {
    return Status::InvalidArgument("FlatOptions: elems_per_page == 0");
  }
  return seed_tree.Validate();
}

Result<FlatIndex> FlatIndex::Build(const ElementVec& elements,
                                   storage::PageStore* store,
                                   FlatOptions options) {
  NEURODB_RETURN_NOT_OK(options.Validate());
  if (store == nullptr) {
    return Status::InvalidArgument("FlatIndex::Build: null store");
  }

  FlatIndex index;
  index.options_ = options;

  NEURODB_ASSIGN_OR_RETURN(
      storage::Layout layout,
      storage::PaginateElements(elements, store, options.elems_per_page,
                                options.pack));
  index.page_ids_ = std::move(layout.page_ids);
  index.page_bounds_ = std::move(layout.page_bounds);
  index.domain_ = layout.domain;

  // Seed tree over the page MBRs. Element ids are page indexes.
  ElementVec page_elements;
  page_elements.reserve(index.page_bounds_.size());
  for (uint32_t i = 0; i < index.page_bounds_.size(); ++i) {
    page_elements.emplace_back(static_cast<ElementId>(i),
                               index.page_bounds_[i]);
  }
  NEURODB_ASSIGN_OR_RETURN(
      index.seed_tree_,
      rtree::RTree::BulkLoadStr(page_elements, options.seed_tree));

  // Neighborhood graph: pages whose MBRs intersect. Found via the seed
  // tree (P * log P instead of P^2 pair tests).
  index.neighbors_.resize(index.page_bounds_.size());
  for (uint32_t i = 0; i < index.page_bounds_.size(); ++i) {
    std::vector<ElementId> hits;
    index.seed_tree_.RangeQuery(index.page_bounds_[i], &hits);
    auto& list = index.neighbors_[i];
    list.reserve(hits.size() > 0 ? hits.size() - 1 : 0);
    for (ElementId hit : hits) {
      uint32_t j = static_cast<uint32_t>(hit);
      if (j != i) list.push_back(j);
    }
    std::sort(list.begin(), list.end());
  }
  return index;
}

Status FlatIndex::CrawlFrom(uint32_t start, const Aabb& box,
                            storage::BufferPool* pool,
                            geom::ResultVisitor& visitor,
                            std::vector<char>* visited,
                            std::vector<uint32_t>* visit_order,
                            FlatQueryStats* stats) const {
  std::deque<uint32_t> queue;
  queue.push_back(start);
  (*visited)[start] = 1;

  while (!queue.empty()) {
    uint32_t page_index = queue.front();
    queue.pop_front();

    auto page = pool->Fetch(page_ids_[page_index]);
    if (!page.ok()) return page.status();
    if (stats != nullptr) {
      ++stats->data_pages_read;
      ++stats->crawl_steps;
    }
    if (visit_order != nullptr) visit_order->push_back(page_index);

    for (const auto& e : (*page)->elements) {
      if (stats != nullptr) ++stats->elements_scanned;
      if (e.bounds.Intersects(box)) {
        visitor.Visit(e.id, e.bounds);
        if (stats != nullptr) ++stats->results;
      }
    }
    // Recursively visit neighboring pages that overlap the range. Neighbors
    // of retrieved pages that are not in the range are not visited.
    for (uint32_t n : neighbors_[page_index]) {
      if (!(*visited)[n] && page_bounds_[n].Intersects(box)) {
        (*visited)[n] = 1;
        queue.push_back(n);
      }
    }
  }
  return Status::OK();
}

Status FlatIndex::RangeQueryTraced(const Aabb& box, storage::BufferPool* pool,
                                   geom::ResultVisitor& visitor,
                                   std::vector<uint32_t>* page_visit_order,
                                   FlatQueryStats* stats) const {
  if (pool == nullptr) {
    return Status::InvalidArgument("FlatIndex::RangeQuery: null pool");
  }
  if (page_ids_.empty()) return Status::OK();

  // Phase 1: seed — find one page intersecting the range.
  rtree::QueryStats seed_stats;
  SpatialElement seed;
  bool found = seed_tree_.FindAny(box, &seed, &seed_stats);
  if (stats != nullptr) stats->seed_nodes_visited = seed_stats.nodes_visited;

  std::vector<char> visited(page_ids_.size(), 0);
  if (found) {
    // Phase 2: crawl through the neighborhood information.
    NEURODB_RETURN_NOT_OK(CrawlFrom(static_cast<uint32_t>(seed.id), box, pool,
                                    visitor, &visited, page_visit_order,
                                    stats));
  }

  // Phase 3 (optional): rescue pass — complete the result on data whose
  // in-range page graph is disconnected. Memory-only seed-tree scan; any
  // unvisited page found starts another crawl.
  if (options_.rescue) {
    rtree::QueryStats rescue_stats;
    std::vector<ElementId> in_range;
    seed_tree_.RangeQuery(box, &in_range, &rescue_stats);
    if (stats != nullptr) {
      stats->rescue_nodes_visited = rescue_stats.nodes_visited;
    }
    for (ElementId hit : in_range) {
      uint32_t page_index = static_cast<uint32_t>(hit);
      if (!visited[page_index]) {
        if (stats != nullptr) ++stats->extra_seeds;
        NEURODB_RETURN_NOT_OK(CrawlFrom(page_index, box, pool, visitor,
                                        &visited, page_visit_order, stats));
      }
    }
  }
  return Status::OK();
}

Status FlatIndex::RangeQueryTraced(const Aabb& box, storage::BufferPool* pool,
                                   std::vector<ElementId>* out,
                                   std::vector<uint32_t>* page_visit_order,
                                   FlatQueryStats* stats) const {
  if (out == nullptr) {
    return Status::InvalidArgument("FlatIndex::RangeQuery: null output");
  }
  geom::VectorVisitor visitor(out);
  return RangeQueryTraced(box, pool, visitor, page_visit_order, stats);
}

Status FlatIndex::RangeQuery(const Aabb& box, storage::BufferPool* pool,
                             geom::ResultVisitor& visitor,
                             FlatQueryStats* stats) const {
  return RangeQueryTraced(box, pool, visitor, nullptr, stats);
}

Status FlatIndex::RangeQuery(const Aabb& box, storage::BufferPool* pool,
                             std::vector<ElementId>* out,
                             FlatQueryStats* stats) const {
  return RangeQueryTraced(box, pool, out, nullptr, stats);
}

Status FlatIndex::Knn(const geom::Vec3& p, size_t k, storage::BufferPool* pool,
                      std::vector<geom::KnnHit>* hits, FlatQueryStats* stats,
                      double initial_radius_hint) const {
  if (pool == nullptr) {
    return Status::InvalidArgument("FlatIndex::Knn: null pool");
  }
  if (hits == nullptr) {
    return Status::InvalidArgument("FlatIndex::Knn: null output");
  }
  if (!geom::IsFinitePoint(p)) {
    return Status::InvalidArgument("FlatIndex::Knn: non-finite query point");
  }
  hits->clear();
  if (k == 0 || page_ids_.empty()) return Status::OK();

  // Initial ring radius sized so the ring is *expected* to hold ~k
  // elements under a uniform density estimate: the domain scaled by the
  // cube root of k over the (approximate) element count. Too small merely
  // costs extra (memory-only) seed-tree rounds; too large costs page
  // reads. Degenerate (zero-extent) domains start at 1.
  geom::Vec3 extent = domain_.Extent();
  float max_extent = std::max({extent.x, extent.y, extent.z});
  size_t approx_elements =
      std::max<size_t>(1, page_ids_.size() * options_.elems_per_page);
  float radius =
      max_extent > 0.0f
          ? max_extent * std::cbrt(static_cast<float>(k) /
                                   static_cast<float>(approx_elements))
          : 1.0f;
  if (!(radius > 0.0f)) radius = 1.0f;
  // A caller-supplied starting radius (sessions seed it from the previous
  // step's k-th hit distance) overrides the density estimate. Purely a
  // starting point — the termination condition below is unchanged, so the
  // answer is bit-identical to an unseeded run.
  if (initial_radius_hint > 0.0 &&
      std::isfinite(initial_radius_hint)) {
    radius = static_cast<float>(initial_radius_hint);
    if (!(radius > 0.0f)) radius = 1.0f;
  }

  geom::KnnAccumulator acc(k);
  std::vector<char> visited(page_ids_.size(), 0);
  size_t pages_left = page_ids_.size();

  for (;;) {
    if (stats != nullptr) ++stats->knn_rings;
    // All pages whose MBR intersects the current ring cube. An element at
    // box distance d <= radius has Chebyshev distance <= d, so its page
    // intersects this cube — scanning the ring is exhaustive up to
    // `radius`.
    rtree::QueryStats ring_stats;
    std::vector<ElementId> in_ring;
    seed_tree_.RangeQuery(Aabb::Cube(p, 2.0f * radius), &in_ring,
                          &ring_stats);
    if (stats != nullptr) {
      stats->seed_nodes_visited += ring_stats.nodes_visited;
    }
    for (ElementId hit : in_ring) {
      uint32_t page_index = static_cast<uint32_t>(hit);
      if (visited[page_index]) continue;
      visited[page_index] = 1;
      --pages_left;
      auto page = pool->Fetch(page_ids_[page_index]);
      if (!page.ok()) return page.status();
      if (stats != nullptr) {
        ++stats->data_pages_read;
        ++stats->crawl_steps;
      }
      for (const auto& e : (*page)->elements) {
        if (stats != nullptr) ++stats->elements_scanned;
        acc.Offer(e.id, geom::KnnDistance(p, e.bounds));
      }
    }
    // Done once the kth best lies inside the scanned ring (everything
    // closer has been seen), or the ring has swallowed the whole dataset.
    // Doubling guarantees the latter in finitely many rounds (the cube
    // stays valid even if the radius saturates to +inf).
    if (acc.Full() && acc.WorstDistance() <= radius) break;
    if (pages_left == 0) break;
    radius *= 2.0f;
  }

  *hits = acc.TakeSorted();
  if (stats != nullptr) stats->results = hits->size();
  return Status::OK();
}

std::vector<uint32_t> FlatIndex::PagesInRange(const Aabb& box) const {
  std::vector<ElementId> hits;
  seed_tree_.RangeQuery(box, &hits);
  std::vector<uint32_t> out;
  out.reserve(hits.size());
  for (ElementId h : hits) out.push_back(static_cast<uint32_t>(h));
  std::sort(out.begin(), out.end());
  return out;
}

size_t FlatIndex::MetadataBytes() const {
  size_t bytes = seed_tree_.MemoryBytes();
  bytes += page_ids_.capacity() * sizeof(storage::PageId);
  bytes += page_bounds_.capacity() * sizeof(Aabb);
  bytes += neighbors_.capacity() * sizeof(std::vector<uint32_t>);
  for (const auto& list : neighbors_) {
    bytes += list.capacity() * sizeof(uint32_t);
  }
  return bytes;
}

Status FlatIndex::CheckInvariants() const {
  if (page_ids_.size() != page_bounds_.size() ||
      page_ids_.size() != neighbors_.size()) {
    return Status::Corruption("FlatIndex: parallel array size mismatch");
  }
  if (seed_tree_.size() != page_ids_.size()) {
    return Status::Corruption("FlatIndex: seed tree entry count mismatch");
  }
  NEURODB_RETURN_NOT_OK(seed_tree_.CheckInvariants());

  for (uint32_t i = 0; i < neighbors_.size(); ++i) {
    for (uint32_t j : neighbors_[i]) {
      if (j >= neighbors_.size()) {
        return Status::Corruption("FlatIndex: neighbor index out of range");
      }
      if (j == i) return Status::Corruption("FlatIndex: self-loop neighbor");
      if (!page_bounds_[i].Intersects(page_bounds_[j])) {
        return Status::Corruption("FlatIndex: neighbor MBRs do not intersect");
      }
      // Symmetry.
      const auto& back = neighbors_[j];
      if (!std::binary_search(back.begin(), back.end(), i)) {
        return Status::Corruption("FlatIndex: asymmetric neighbor link");
      }
    }
  }
  return Status::OK();
}

}  // namespace flat
}  // namespace neurodb
