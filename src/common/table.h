// NeuroDB — TableWriter: aligned ASCII tables for benchmark harness output.
//
// Every bench binary prints the rows/series the corresponding paper exhibit
// reports (see DESIGN.md Section 6) through this writer, so outputs are
// uniform and diffable.

#ifndef NEURODB_COMMON_TABLE_H_
#define NEURODB_COMMON_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace neurodb {

/// Collects rows of string cells and renders them with aligned columns.
class TableWriter {
 public:
  /// `title` is printed above the table; `columns` are the header cells.
  TableWriter(std::string title, std::vector<std::string> columns);

  /// Append a row; missing cells render empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string Num(double v, int precision = 2);
  static std::string Int(uint64_t v);
  /// Bytes rendered with a binary suffix, e.g. "3.2 MiB".
  static std::string Bytes(uint64_t bytes);
  /// Factor rendered as "12.3x".
  static std::string Factor(double v, int precision = 1);

  /// Render the full table.
  std::string ToString() const;

  /// Render and write to stdout.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace neurodb

#endif  // NEURODB_COMMON_TABLE_H_
