#include "common/stats.h"

#include <sstream>

namespace neurodb {

std::string Stats::ToString() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& kv : tickers_) {
    if (!first) os << ' ';
    os << kv.first << '=' << kv.second;
    first = false;
  }
  return os.str();
}

}  // namespace neurodb
