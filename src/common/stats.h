// NeuroDB — statistics registry (RocksDB-style named tickers) and timers.
//
// Every subsystem reports its runtime behaviour (pages read, nodes visited,
// comparisons performed, ...) through a Stats object so the demo-style live
// statistics panels (paper Figures 3, 6, 7) can be reproduced as tables.

#ifndef NEURODB_COMMON_STATS_H_
#define NEURODB_COMMON_STATS_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace neurodb {

/// A monotonically increasing named counter store.
///
/// Not thread-safe by design: each experiment/session owns its Stats
/// instance (single-writer), which keeps increments branch-free and cheap.
class Stats {
 public:
  /// Add `delta` to the named ticker (creating it at zero if absent).
  void Add(const std::string& name, uint64_t delta) { tickers_[name] += delta; }

  /// Increment the named ticker by one.
  void Bump(const std::string& name) { Add(name, 1); }

  /// Overwrite the named ticker (for gauges such as peak memory).
  void Set(const std::string& name, uint64_t value) { tickers_[name] = value; }

  /// Record the maximum seen for a gauge.
  void SetMax(const std::string& name, uint64_t value) {
    uint64_t& slot = tickers_[name];
    if (value > slot) slot = value;
  }

  /// Current value of a ticker (0 if never touched).
  uint64_t Get(const std::string& name) const {
    auto it = tickers_.find(name);
    return it == tickers_.end() ? 0 : it->second;
  }

  /// All tickers in name order.
  const std::map<std::string, uint64_t>& tickers() const { return tickers_; }

  /// Reset all tickers to zero (keeps names).
  void Reset() {
    for (auto& kv : tickers_) kv.second = 0;
  }

  /// Remove all tickers.
  void Clear() { tickers_.clear(); }

  /// Merge another Stats into this one (ticker-wise addition).
  void Merge(const Stats& other) {
    for (const auto& kv : other.tickers()) tickers_[kv.first] += kv.second;
  }

  /// "name=value name=value ..." in name order.
  std::string ToString() const;

 private:
  std::map<std::string, uint64_t> tickers_;
};

/// Wall-clock stopwatch with nanosecond resolution.
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Nanoseconds since construction or the last Restart().
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  double ElapsedMicros() const { return ElapsedNanos() / 1e3; }
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }
  double ElapsedSeconds() const { return ElapsedNanos() / 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII helper: adds the elapsed nanoseconds to `stats[ticker]` on scope exit.
class ScopedTimer {
 public:
  ScopedTimer(Stats* stats, std::string ticker)
      : stats_(stats), ticker_(std::move(ticker)) {}
  ~ScopedTimer() {
    if (stats_ != nullptr) stats_->Add(ticker_, timer_.ElapsedNanos());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Stats* stats_;
  std::string ticker_;
  Timer timer_;
};

}  // namespace neurodb

#endif  // NEURODB_COMMON_STATS_H_
