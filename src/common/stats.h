// NeuroDB — statistics registry (RocksDB-style named tickers) and timers.
//
// Every subsystem reports its runtime behaviour (pages read, nodes visited,
// comparisons performed, ...) through a Stats object so the demo-style live
// statistics panels (paper Figures 3, 6, 7) can be reproduced as tables.

#ifndef NEURODB_COMMON_STATS_H_
#define NEURODB_COMMON_STATS_H_

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace neurodb {

/// A monotonically increasing named counter store.
///
/// ## Single-writer contract
///
/// Stats is NOT thread-safe, by design: each experiment, session, buffer
/// pool or batch lane owns its own instance, mutated by at most one thread
/// at a time. Ownership may move between threads (a warm pool's tickers
/// are bumped by whichever thread holds the engine's warm lock), but two
/// threads must never mutate — or mutate-while-reading — the same instance
/// concurrently. That keeps increments branch-free and lock-free on query
/// hot paths.
///
/// Cross-thread aggregation therefore happens by merging *quiesced*
/// instances after the fact (`Merge`, e.g. per-lane pool stats after batch
/// lanes join), never by sharing one instance across live writers. For
/// metrics that genuinely need concurrent multi-thread recording, use
/// `obs::MetricsRegistry` (src/obs/metrics.h) — that is the thread-safe,
/// engine-wide registry; Stats is the single-owner experiment ledger.
///
/// Debug builds enforce the contract probabilistically: every mutator
/// sets an atomic in-flight flag and asserts it was clear, so two writers
/// racing the same instance trip an assert instead of corrupting the map.
class Stats {
 public:
  Stats() = default;
  // The write-detector flag is per-instance state, not data: copies and
  // moves transfer tickers only. (Explicit because the atomic member
  // suppresses the implicit copy/move operations.)
  Stats(const Stats& other) : tickers_(other.tickers_) {}
  Stats(Stats&& other) noexcept : tickers_(std::move(other.tickers_)) {}
  Stats& operator=(const Stats& other) {
    tickers_ = other.tickers_;
    return *this;
  }
  Stats& operator=(Stats&& other) noexcept {
    tickers_ = std::move(other.tickers_);
    return *this;
  }

  /// Add `delta` to the named ticker (creating it at zero if absent).
  void Add(const std::string& name, uint64_t delta) {
    const WriterCheck check(this);
    tickers_[name] += delta;
  }

  /// Increment the named ticker by one.
  void Bump(const std::string& name) { Add(name, 1); }

  /// Overwrite the named ticker (for gauges such as peak memory).
  void Set(const std::string& name, uint64_t value) {
    const WriterCheck check(this);
    tickers_[name] = value;
  }

  /// Record the maximum seen for a gauge.
  void SetMax(const std::string& name, uint64_t value) {
    const WriterCheck check(this);
    uint64_t& slot = tickers_[name];
    if (value > slot) slot = value;
  }

  /// Current value of a ticker (0 if never touched).
  uint64_t Get(const std::string& name) const {
    auto it = tickers_.find(name);
    return it == tickers_.end() ? 0 : it->second;
  }

  /// All tickers in name order.
  const std::map<std::string, uint64_t>& tickers() const { return tickers_; }

  /// Reset all tickers to zero (keeps names).
  void Reset() {
    const WriterCheck check(this);
    for (auto& kv : tickers_) kv.second = 0;
  }

  /// Remove all tickers.
  void Clear() {
    const WriterCheck check(this);
    tickers_.clear();
  }

  /// Merge another Stats into this one (ticker-wise addition). `other`
  /// must be quiesced (no live writer) — see the single-writer contract.
  void Merge(const Stats& other) {
    const WriterCheck check(this);
    for (const auto& kv : other.tickers()) tickers_[kv.first] += kv.second;
  }

  /// "name=value name=value ..." in name order.
  std::string ToString() const;

 private:
#ifndef NDEBUG
  /// RAII concurrent-write detector: trips an assert when two threads
  /// mutate the same Stats at once (sequential cross-thread handoff stays
  /// legal). Compiled out in release builds.
  class WriterCheck {
   public:
    explicit WriterCheck(const Stats* stats) : stats_(stats) {
      const bool was_writing =
          stats_->writing_.exchange(true, std::memory_order_acquire);
      assert(!was_writing &&
             "common/Stats is single-writer: concurrent mutation detected "
             "(use obs::MetricsRegistry for shared multi-thread metrics)");
      (void)was_writing;
    }
    ~WriterCheck() {
      stats_->writing_.store(false, std::memory_order_release);
    }
    WriterCheck(const WriterCheck&) = delete;
    WriterCheck& operator=(const WriterCheck&) = delete;

   private:
    const Stats* stats_;
  };
  mutable std::atomic<bool> writing_{false};
#else
  class WriterCheck {
   public:
    explicit WriterCheck(const Stats*) {}
  };
#endif

  std::map<std::string, uint64_t> tickers_;
};

/// Wall-clock stopwatch with nanosecond resolution.
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Nanoseconds since construction or the last Restart().
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  double ElapsedMicros() const { return ElapsedNanos() / 1e3; }
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }
  double ElapsedSeconds() const { return ElapsedNanos() / 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII helper: adds the elapsed nanoseconds to `stats[ticker]` on scope exit.
class ScopedTimer {
 public:
  ScopedTimer(Stats* stats, std::string ticker)
      : stats_(stats), ticker_(std::move(ticker)) {}
  ~ScopedTimer() {
    if (stats_ != nullptr) stats_->Add(ticker_, timer_.ElapsedNanos());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Stats* stats_;
  std::string ticker_;
  Timer timer_;
};

}  // namespace neurodb

#endif  // NEURODB_COMMON_STATS_H_
