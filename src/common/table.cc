#include "common/table.h"

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>

namespace neurodb {

TableWriter::TableWriter(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void TableWriter::AddRow(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

std::string TableWriter::Num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TableWriter::Int(uint64_t v) { return std::to_string(v); }

std::string TableWriter::Bytes(uint64_t bytes) {
  static const char* kSuffix[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int s = 0;
  while (v >= 1024.0 && s < 4) {
    v /= 1024.0;
    ++s;
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(v < 10 ? 2 : 1) << v << ' '
     << kSuffix[s];
  return os.str();
}

std::string TableWriter::Factor(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v << 'x';
  return os.str();
}

std::string TableWriter::ToString() const {
  std::vector<size_t> width(columns_.size(), 0);
  for (size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left << std::setw(static_cast<int>(width[c]))
         << cells[c];
    }
    os << " |\n";
  };
  size_t total = 1;
  for (size_t c = 0; c < columns_.size(); ++c) total += width[c] + 3;
  std::string rule(total, '-');
  os << rule << '\n';
  emit_row(columns_);
  os << rule << '\n';
  for (const auto& row : rows_) emit_row(row);
  os << rule << '\n';
  return os.str();
}

void TableWriter::Print() const { std::cout << ToString() << std::flush; }

}  // namespace neurodb
