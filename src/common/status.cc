#include "common/status.h"

namespace neurodb {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace neurodb
