// NeuroDB — Result<T>: value-or-Status, the return type of fallible
// value-producing operations.

#ifndef NEURODB_COMMON_RESULT_H_
#define NEURODB_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace neurodb {

/// Holds either a value of type T or a non-OK Status.
///
/// Usage:
///   Result<Circuit> r = LoadCircuit(path);
///   if (!r.ok()) return r.status();
///   Circuit c = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Construct from a value (implicit, so `return value;` works).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Construct from a non-OK status (implicit, so `return status;` works).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the value. Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Value if ok, otherwise `fallback`.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assign the value of a Result expression to `lhs`, or propagate its error.
#define NEURODB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value();

#define NEURODB_ASSIGN_OR_RETURN(lhs, expr)                                  \
  NEURODB_ASSIGN_OR_RETURN_IMPL(NEURODB_CONCAT_(_res_, __LINE__), lhs, expr)

#define NEURODB_CONCAT_(a, b) NEURODB_CONCAT_2_(a, b)
#define NEURODB_CONCAT_2_(a, b) a##b

}  // namespace neurodb

#endif  // NEURODB_COMMON_RESULT_H_
