// NeuroDB — Status: error model used across the library.
//
// The library never throws exceptions (Arrow/RocksDB idiom); fallible
// operations return a Status, and value-returning fallible operations return
// a Result<T> (see result.h).

#ifndef NEURODB_COMMON_STATUS_H_
#define NEURODB_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace neurodb {

/// Error category for a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kCorruption = 4,
  kResourceExhausted = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kIOError = 8,
  kAlreadyExists = 9,
};

/// Human-readable name of a StatusCode ("OK", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy (the
/// message is only allocated on error paths).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagate a non-OK Status to the caller.
#define NEURODB_RETURN_NOT_OK(expr)            \
  do {                                         \
    ::neurodb::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace neurodb

#endif  // NEURODB_COMMON_STATUS_H_
