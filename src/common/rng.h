// NeuroDB — Pcg32: small, fast, reproducible pseudo-random number generator.
//
// PCG-XSH-RR 64/32 (O'Neill 2014). Every stochastic component in the library
// (morphology generation, workloads, test sweeps) takes an explicit seed so
// all experiments are reproducible bit-for-bit across platforms.

#ifndef NEURODB_COMMON_RNG_H_
#define NEURODB_COMMON_RNG_H_

#include <cstdint>
#include <cmath>

namespace neurodb {

/// Deterministic 32-bit PRNG with 64-bit state.
class Pcg32 {
 public:
  /// `seed` selects the stream starting point; `seq` selects one of 2^63
  /// independent streams.
  explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL,
                 uint64_t seq = 0xda3e39cb94b95bdbULL) {
    state_ = 0u;
    inc_ = (seq << 1u) | 1u;
    NextU32();
    state_ += seed;
    NextU32();
  }

  /// Uniform 32-bit value.
  uint32_t NextU32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform 64-bit value.
  uint64_t NextU64() {
    return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
  }

  /// Uniform value in [0, bound). Unbiased (rejection sampling).
  uint32_t NextBounded(uint32_t bound) {
    if (bound == 0) return 0;
    uint32_t threshold = (0u - bound) % bound;
    for (;;) {
      uint32_t r = NextU32();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return NextU32() * (1.0 / 4294967296.0);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Standard normal via Box–Muller (no cached spare: keeps state replayable
  /// from the call count alone).
  double NextGaussian() {
    double u1;
    do {
      u1 = NextDouble();
    } while (u1 <= 1e-12);
    double u2 = NextDouble();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Bernoulli trial with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Derive an independent child generator (for parallel structures).
  Pcg32 Fork() { return Pcg32(NextU64(), NextU64() | 1u); }

 private:
  uint64_t state_;
  uint64_t inc_;
};

}  // namespace neurodb

#endif  // NEURODB_COMMON_RNG_H_
