// NeuroDB — SimClock: a discrete simulated clock for I/O cost modelling.
//
// The paper's FLAT/SCOUT experiments measure wall time on a disk-resident
// index. To make those experiments portable and exactly reproducible we
// model time instead of measuring it: page misses, think time and prefetch
// work advance a simulated clock (see storage::DiskCostModel). CPU-bound
// experiments (the TOUCH joins) use real wall time via common::Timer.

#ifndef NEURODB_COMMON_SIM_CLOCK_H_
#define NEURODB_COMMON_SIM_CLOCK_H_

#include <algorithm>
#include <cstdint>

namespace neurodb {

/// Monotonic simulated clock counting microseconds.
class SimClock {
 public:
  SimClock() = default;

  /// Current simulated time in microseconds.
  uint64_t NowMicros() const { return now_us_; }

  /// Advance the clock by `us` microseconds.
  void Advance(uint64_t us) { now_us_ += us; }

  /// Move the clock forward to `t_us` if it is in the future; no-op if the
  /// clock is already past it. Returns the wait actually performed.
  uint64_t AdvanceTo(uint64_t t_us) {
    uint64_t waited = t_us > now_us_ ? t_us - now_us_ : 0;
    now_us_ = std::max(now_us_, t_us);
    return waited;
  }

  void Reset() { now_us_ = 0; }

 private:
  uint64_t now_us_ = 0;
};

}  // namespace neurodb

#endif  // NEURODB_COMMON_SIM_CLOCK_H_
