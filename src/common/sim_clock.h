// NeuroDB — SimClock: a discrete simulated clock for I/O cost modelling.
//
// The paper's FLAT/SCOUT experiments measure wall time on a disk-resident
// index. To make those experiments portable and exactly reproducible we
// model time instead of measuring it: page misses, think time and prefetch
// work advance a simulated clock (see storage::DiskCostModel). CPU-bound
// experiments (the TOUCH joins) use real wall time via common::Timer.
//
// The counter is atomic so one clock can be charged from several worker
// threads (parallel shard queries over one PoolSet, exec::ParallelExecutor
// lanes): the final reading is the order-independent *sum* of all charges —
// total modeled I/O work, not elapsed wall time — which keeps parallel runs
// bit-identical to serial ones.

#ifndef NEURODB_COMMON_SIM_CLOCK_H_
#define NEURODB_COMMON_SIM_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace neurodb {

/// Monotonic simulated clock counting microseconds. Thread-safe.
class SimClock {
 public:
  SimClock() = default;

  SimClock(const SimClock&) = delete;
  SimClock& operator=(const SimClock&) = delete;

  /// Current simulated time in microseconds.
  uint64_t NowMicros() const { return now_us_.load(std::memory_order_relaxed); }

  /// Advance the clock by `us` microseconds.
  void Advance(uint64_t us) {
    now_us_.fetch_add(us, std::memory_order_relaxed);
  }

  /// Move the clock forward to `t_us` if it is in the future; no-op if the
  /// clock is already past it. Returns the wait actually performed.
  uint64_t AdvanceTo(uint64_t t_us) {
    uint64_t cur = now_us_.load(std::memory_order_relaxed);
    while (cur < t_us && !now_us_.compare_exchange_weak(
                             cur, t_us, std::memory_order_relaxed)) {
    }
    return cur < t_us ? t_us - cur : 0;
  }

  void Reset() { now_us_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> now_us_{0};
};

}  // namespace neurodb

#endif  // NEURODB_COMMON_SIM_CLOCK_H_
