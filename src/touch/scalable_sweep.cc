// Scalable sweep join (Arge et al., VLDB'98 lineage) — the second sweep
// baseline the paper names. Unlike plane_sweep.cc's forward scan, this
// variant maintains explicit *active lists*: objects whose x-interval
// contains the sweep front. Every incoming object is tested against the
// opposite active list. The paper's criticism — "the sweep line approach
// can become inefficient if too many elements are on the sweep line
// (likely in case of dense data/detailed models)" — is exactly the active
// list growing with density.

#include <algorithm>
#include <numeric>

#include "common/stats.h"
#include "touch/join_common.h"
#include "touch/spatial_join.h"

namespace neurodb {
namespace touch {

namespace {

/// Lazily-compacted active list: expired entries (max.x < front) are
/// dropped while scanning.
class ActiveList {
 public:
  void Add(uint32_t index) { items_.push_back(index); }

  /// Call `fn(index)` for every live entry; entries with
  /// `max_x(index) < front` are removed on the way.
  template <typename MaxX, typename Fn>
  void Scan(float front, const MaxX& max_x, const Fn& fn) {
    size_t keep = 0;
    for (size_t k = 0; k < items_.size(); ++k) {
      uint32_t idx = items_[k];
      if (max_x(idx) < front) continue;  // expired: drop
      items_[keep++] = idx;
      fn(idx);
    }
    items_.resize(keep);
  }

  size_t size() const { return items_.size(); }

 private:
  std::vector<uint32_t> items_;
};

}  // namespace

Result<JoinResult> ScalableSweepJoin(const JoinInput& a, const JoinInput& b,
                                     const JoinOptions& options) {
  NEURODB_RETURN_NOT_OK(internal::ValidateJoinArgs(a, b, options));

  JoinResult out;
  Timer total;

  Timer build;
  std::vector<geom::Aabb> ea = internal::ExpandAll(a.boxes, options.epsilon);
  std::vector<uint32_t> oa(a.size());
  std::vector<uint32_t> ob(b.size());
  std::iota(oa.begin(), oa.end(), 0u);
  std::iota(ob.begin(), ob.end(), 0u);
  std::sort(oa.begin(), oa.end(), [&](uint32_t x, uint32_t y) {
    return ea[x].min.x < ea[y].min.x;
  });
  std::sort(ob.begin(), ob.end(), [&](uint32_t x, uint32_t y) {
    return b.boxes[x].min.x < b.boxes[y].min.x;
  });
  out.stats.build_ns = build.ElapsedNanos();

  Timer probe;
  ActiveList active_a;
  ActiveList active_b;
  uint64_t peak_active = 0;
  size_t ia = 0;
  size_t ib = 0;
  while (ia < oa.size() || ib < ob.size()) {
    const bool take_a =
        ib >= ob.size() ||
        (ia < oa.size() && ea[oa[ia]].min.x <= b.boxes[ob[ib]].min.x);
    if (take_a) {
      uint32_t i = oa[ia++];
      const float front = ea[i].min.x;
      active_b.Scan(front,
                    [&](uint32_t j) { return b.boxes[j].max.x; },
                    [&](uint32_t j) {
                      if (internal::PairMatches(a, b, ea, i, j, options,
                                                &out.stats)) {
                        out.pairs.push_back(JoinPair{a.ids[i], b.ids[j]});
                      }
                    });
      active_a.Add(i);
    } else {
      uint32_t j = ob[ib++];
      const float front = b.boxes[j].min.x;
      active_a.Scan(front, [&](uint32_t i) { return ea[i].max.x; },
                    [&](uint32_t i) {
                      if (internal::PairMatches(a, b, ea, i, j, options,
                                                &out.stats)) {
                        out.pairs.push_back(JoinPair{a.ids[i], b.ids[j]});
                      }
                    });
      active_b.Add(j);
    }
    peak_active = std::max<uint64_t>(peak_active,
                                     active_a.size() + active_b.size());
  }
  out.stats.probe_ns = probe.ElapsedNanos();
  out.stats.total_ns = total.ElapsedNanos();
  out.stats.results = out.pairs.size();
  out.stats.peak_bytes = ea.capacity() * sizeof(geom::Aabb) +
                         (oa.capacity() + ob.capacity()) * sizeof(uint32_t) +
                         peak_active * sizeof(uint32_t);
  return out;
}

}  // namespace touch
}  // namespace neurodb
