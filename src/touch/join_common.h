// NeuroDB — internal helpers shared by the join implementations.

#ifndef NEURODB_TOUCH_JOIN_COMMON_H_
#define NEURODB_TOUCH_JOIN_COMMON_H_

#include <vector>

#include "geom/aabb.h"
#include "geom/segment.h"
#include "touch/spatial_join.h"

namespace neurodb {
namespace touch {
namespace internal {

/// A's boxes pre-expanded by epsilon (the filter predicate then becomes a
/// plain intersection test against B's boxes).
inline std::vector<geom::Aabb> ExpandAll(const std::vector<geom::Aabb>& boxes,
                                         float eps) {
  std::vector<geom::Aabb> out;
  out.reserve(boxes.size());
  for (const auto& b : boxes) out.push_back(b.Expanded(eps));
  return out;
}

/// Full predicate on positions (i in A, j in B) with pre-expanded A boxes.
/// Counts one mbr test and, when applicable, one refinement.
inline bool PairMatches(const JoinInput& a, const JoinInput& b,
                        const std::vector<geom::Aabb>& expanded_a, uint32_t i,
                        uint32_t j, const JoinOptions& options,
                        JoinStats* stats) {
  ++stats->mbr_tests;
  if (!expanded_a[i].Intersects(b.boxes[j])) return false;
  if (options.refine && a.HasGeometry() && b.HasGeometry()) {
    ++stats->refine_tests;
    return geom::CapsuleDistance(a.segments[i], b.segments[j]) <=
           static_cast<double>(options.epsilon);
  }
  return true;
}

/// Shared argument validation.
inline Status ValidateJoinArgs(const JoinInput& a, const JoinInput& b,
                               const JoinOptions& options) {
  NEURODB_RETURN_NOT_OK(a.Validate());
  NEURODB_RETURN_NOT_OK(b.Validate());
  return options.Validate();
}

}  // namespace internal
}  // namespace touch
}  // namespace neurodb

#endif  // NEURODB_TOUCH_JOIN_COMMON_H_
