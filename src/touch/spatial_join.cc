#include "touch/spatial_join.h"

namespace neurodb {
namespace touch {

JoinInput JoinInput::FromElements(const geom::ElementVec& elements) {
  JoinInput in;
  in.boxes.reserve(elements.size());
  in.ids.reserve(elements.size());
  for (const auto& e : elements) {
    in.boxes.push_back(e.bounds);
    in.ids.push_back(e.id);
  }
  return in;
}

JoinInput JoinInput::FromSegments(std::vector<geom::Segment> segments,
                                  std::vector<geom::ElementId> ids) {
  JoinInput in;
  in.boxes.reserve(segments.size());
  for (const auto& s : segments) in.boxes.push_back(s.Bounds());
  in.segments = std::move(segments);
  in.ids = std::move(ids);
  return in;
}

Status JoinInput::Validate() const {
  if (boxes.size() != ids.size()) {
    return Status::InvalidArgument("JoinInput: boxes/ids size mismatch");
  }
  if (!segments.empty() && segments.size() != boxes.size()) {
    return Status::InvalidArgument("JoinInput: segments size mismatch");
  }
  for (const auto& b : boxes) {
    if (b.IsEmpty()) {
      return Status::InvalidArgument("JoinInput: empty bounding box");
    }
  }
  return Status::OK();
}

Status JoinOptions::Validate() const {
  if (!(epsilon >= 0.0f)) {
    return Status::InvalidArgument("JoinOptions: epsilon must be >= 0");
  }
  if (touch_fanout < 2) {
    return Status::InvalidArgument("JoinOptions: touch_fanout must be >= 2");
  }
  if (touch_leaf < 1) {
    return Status::InvalidArgument("JoinOptions: touch_leaf must be >= 1");
  }
  if (s3_fanout < 2) {
    return Status::InvalidArgument("JoinOptions: s3_fanout must be >= 2");
  }
  if (pbsm_max_cells_per_dim < 1) {
    return Status::InvalidArgument(
        "JoinOptions: pbsm_max_cells_per_dim must be >= 1");
  }
  return Status::OK();
}

const char* JoinMethodName(JoinMethod method) {
  switch (method) {
    case JoinMethod::kNestedLoop:
      return "NestedLoop";
    case JoinMethod::kPlaneSweep:
      return "PlaneSweep";
    case JoinMethod::kScalableSweep:
      return "ScalableSweep";
    case JoinMethod::kPbsm:
      return "PBSM";
    case JoinMethod::kS3:
      return "S3";
    case JoinMethod::kTouch:
      return "TOUCH";
  }
  return "Unknown";
}

std::vector<JoinMethod> AllJoinMethods() {
  return {JoinMethod::kTouch,      JoinMethod::kPbsm,
          JoinMethod::kS3,         JoinMethod::kPlaneSweep,
          JoinMethod::kScalableSweep, JoinMethod::kNestedLoop};
}

Result<JoinResult> RunJoin(JoinMethod method, const JoinInput& a,
                           const JoinInput& b, const JoinOptions& options) {
  switch (method) {
    case JoinMethod::kNestedLoop:
      return NestedLoopJoin(a, b, options);
    case JoinMethod::kPlaneSweep:
      return PlaneSweepJoin(a, b, options);
    case JoinMethod::kScalableSweep:
      return ScalableSweepJoin(a, b, options);
    case JoinMethod::kPbsm:
      return PbsmJoin(a, b, options);
    case JoinMethod::kS3:
      return S3Join(a, b, options);
    case JoinMethod::kTouch:
      return TouchJoin(a, b, options);
  }
  return Status::InvalidArgument("RunJoin: unknown method");
}

}  // namespace touch
}  // namespace neurodb
