// PBSM — Partition Based Spatial-Merge join (Patel & DeWitt, SIGMOD'96),
// the space-oriented-partitioning baseline. Objects are replicated into
// every grid cell they overlap (the memory cost the paper holds against
// it), cells are joined independently, and duplicate pairs are avoided with
// the reference-point test (report a pair only in the cell that contains
// the lower corner of the boxes' intersection).

#include <algorithm>
#include <cmath>

#include "common/stats.h"
#include "touch/join_common.h"
#include "touch/spatial_join.h"

namespace neurodb {
namespace touch {

namespace {

struct Grid {
  geom::Aabb domain;
  size_t dims[3] = {1, 1, 1};
  float inv_cell[3] = {0, 0, 0};

  size_t CellIndex(size_t cx, size_t cy, size_t cz) const {
    return (cz * dims[1] + cy) * dims[0] + cx;
  }

  size_t NumCells() const { return dims[0] * dims[1] * dims[2]; }

  /// Clamped cell coordinate of a scalar along `axis`.
  size_t Coord(float v, int axis) const {
    float rel = (v - domain.min[axis]) * inv_cell[axis];
    if (rel < 0.0f) return 0;
    size_t c = static_cast<size_t>(rel);
    return c >= dims[axis] ? dims[axis] - 1 : c;
  }

  /// Cell range [lo, hi] overlapped by a box.
  void Range(const geom::Aabb& box, size_t lo[3], size_t hi[3]) const {
    for (int axis = 0; axis < 3; ++axis) {
      lo[axis] = Coord(box.min[axis], axis);
      hi[axis] = Coord(box.max[axis], axis);
    }
  }

  /// Cell containing a point.
  size_t CellOf(const geom::Vec3& p) const {
    return CellIndex(Coord(p.x, 0), Coord(p.y, 1), Coord(p.z, 2));
  }
};

Grid MakeGrid(const geom::Aabb& domain, size_t total_objects,
              const JoinOptions& options) {
  Grid grid;
  grid.domain = domain;
  size_t target = options.pbsm_target_per_cell == 0
                      ? 64
                      : options.pbsm_target_per_cell;
  double cells_wanted =
      std::max(1.0, static_cast<double>(total_objects) / target);
  size_t per_dim = static_cast<size_t>(std::ceil(std::cbrt(cells_wanted)));
  per_dim = std::clamp<size_t>(per_dim, 1, options.pbsm_max_cells_per_dim);
  geom::Vec3 extent = domain.Extent();
  for (int axis = 0; axis < 3; ++axis) {
    grid.dims[axis] = extent[axis] > 0.0f ? per_dim : 1;
    float cell = extent[axis] / static_cast<float>(grid.dims[axis]);
    grid.inv_cell[axis] = cell > 0.0f ? 1.0f / cell : 0.0f;
  }
  return grid;
}

}  // namespace

Result<JoinResult> PbsmJoin(const JoinInput& a, const JoinInput& b,
                            const JoinOptions& options) {
  NEURODB_RETURN_NOT_OK(internal::ValidateJoinArgs(a, b, options));

  JoinResult out;
  Timer total;
  if (a.size() == 0 || b.size() == 0) {
    out.stats.total_ns = total.ElapsedNanos();
    return out;
  }

  Timer build;
  std::vector<geom::Aabb> ea = internal::ExpandAll(a.boxes, options.epsilon);

  geom::Aabb domain;
  for (const auto& box : ea) domain.Extend(box);
  for (const auto& box : b.boxes) domain.Extend(box);
  Grid grid = MakeGrid(domain, a.size() + b.size(), options);

  // Replicate objects into every overlapping cell.
  std::vector<std::vector<uint32_t>> cell_a(grid.NumCells());
  std::vector<std::vector<uint32_t>> cell_b(grid.NumCells());
  uint64_t replicas = 0;
  auto scatter = [&](const std::vector<geom::Aabb>& boxes,
                     std::vector<std::vector<uint32_t>>* cells) {
    for (uint32_t idx = 0; idx < boxes.size(); ++idx) {
      size_t lo[3];
      size_t hi[3];
      grid.Range(boxes[idx], lo, hi);
      for (size_t z = lo[2]; z <= hi[2]; ++z) {
        for (size_t y = lo[1]; y <= hi[1]; ++y) {
          for (size_t x = lo[0]; x <= hi[0]; ++x) {
            (*cells)[grid.CellIndex(x, y, z)].push_back(idx);
            ++replicas;
          }
        }
      }
    }
  };
  scatter(ea, &cell_a);
  scatter(b.boxes, &cell_b);
  out.stats.build_ns = build.ElapsedNanos();
  out.stats.peak_bytes = ea.capacity() * sizeof(geom::Aabb) +
                         replicas * sizeof(uint32_t) +
                         grid.NumCells() * 2 * sizeof(std::vector<uint32_t>);

  Timer probe;
  for (size_t cell = 0; cell < grid.NumCells(); ++cell) {
    const auto& list_a = cell_a[cell];
    const auto& list_b = cell_b[cell];
    if (list_a.empty() || list_b.empty()) continue;
    for (uint32_t i : list_a) {
      for (uint32_t j : list_b) {
        ++out.stats.mbr_tests;
        if (!ea[i].Intersects(b.boxes[j])) continue;
        // Reference-point duplicate avoidance: only the cell containing the
        // lower corner of the intersection reports the pair.
        geom::Vec3 ref = geom::Max(ea[i].min, b.boxes[j].min);
        if (grid.CellOf(ref) != cell) continue;
        bool match = true;
        if (options.refine && a.HasGeometry() && b.HasGeometry()) {
          ++out.stats.refine_tests;
          match = geom::CapsuleDistance(a.segments[i], b.segments[j]) <=
                  static_cast<double>(options.epsilon);
        }
        if (match) out.pairs.push_back(JoinPair{a.ids[i], b.ids[j]});
      }
    }
  }
  out.stats.probe_ns = probe.ElapsedNanos();
  out.stats.total_ns = total.ElapsedNanos();
  out.stats.results = out.pairs.size();
  return out;
}

}  // namespace touch
}  // namespace neurodb
