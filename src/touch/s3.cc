// S3 — synchronized R-tree traversal join (Brinkhoff et al., SIGMOD'93
// lineage). Builds an STR-packed R-tree on each input and recursively joins
// intersecting node pairs. The paper cites it as the memory-frugal baseline
// that TOUCH beats by about two orders of magnitude on dense data: index
// overlap makes the number of node-pair comparisons explode.

#include "common/stats.h"
#include "rtree/rtree.h"
#include "touch/join_common.h"
#include "touch/spatial_join.h"

namespace neurodb {
namespace touch {

namespace {

struct S3Context {
  const JoinInput* a;
  const JoinInput* b;
  const std::vector<geom::Aabb>* ea;  // expanded A boxes by position
  const rtree::RTree* tree_a;
  const rtree::RTree* tree_b;
  const JoinOptions* options;
  float eps;
  JoinResult* out;
};

void JoinNodes(const S3Context& ctx, int32_t na, int32_t nb) {
  const rtree::RTree::Node& node_a = ctx.tree_a->node(na);
  const rtree::RTree::Node& node_b = ctx.tree_b->node(nb);

  if (node_a.IsLeaf() && node_b.IsLeaf()) {
    for (const auto& entry_a : node_a.entries) {
      for (const auto& entry_b : node_b.entries) {
        uint32_t i = static_cast<uint32_t>(entry_a.id);
        uint32_t j = static_cast<uint32_t>(entry_b.id);
        if (internal::PairMatches(*ctx.a, *ctx.b, *ctx.ea, i, j, *ctx.options,
                                  &ctx.out->stats)) {
          ctx.out->pairs.push_back(
              JoinPair{ctx.a->ids[i], ctx.b->ids[j]});
        }
      }
    }
    return;
  }

  if (node_b.IsLeaf() || (!node_a.IsLeaf() && node_a.level >= node_b.level)) {
    // Descend A.
    for (int32_t child : node_a.children) {
      ++ctx.out->stats.node_tests;
      if (ctx.tree_a->node(child).bounds.Expanded(ctx.eps).Intersects(
              node_b.bounds)) {
        JoinNodes(ctx, child, nb);
      }
    }
  } else {
    // Descend B.
    for (int32_t child : node_b.children) {
      ++ctx.out->stats.node_tests;
      if (node_a.bounds.Expanded(ctx.eps).Intersects(
              ctx.tree_b->node(child).bounds)) {
        JoinNodes(ctx, na, child);
      }
    }
  }
}

}  // namespace

Result<JoinResult> S3Join(const JoinInput& a, const JoinInput& b,
                          const JoinOptions& options) {
  NEURODB_RETURN_NOT_OK(internal::ValidateJoinArgs(a, b, options));

  JoinResult out;
  Timer total;
  if (a.size() == 0 || b.size() == 0) {
    out.stats.total_ns = total.ElapsedNanos();
    return out;
  }

  Timer build;
  std::vector<geom::Aabb> ea = internal::ExpandAll(a.boxes, options.epsilon);

  rtree::RTreeOptions tree_options;
  tree_options.max_entries = options.s3_fanout;
  tree_options.min_entries = std::max<size_t>(1, options.s3_fanout * 2 / 5);

  // Trees store positions (0..n-1) as entry ids; output maps to real ids.
  geom::ElementVec elems_a;
  elems_a.reserve(a.size());
  for (uint32_t i = 0; i < a.size(); ++i) {
    elems_a.emplace_back(static_cast<geom::ElementId>(i), a.boxes[i]);
  }
  geom::ElementVec elems_b;
  elems_b.reserve(b.size());
  for (uint32_t j = 0; j < b.size(); ++j) {
    elems_b.emplace_back(static_cast<geom::ElementId>(j), b.boxes[j]);
  }
  NEURODB_ASSIGN_OR_RETURN(rtree::RTree tree_a,
                           rtree::RTree::BulkLoadStr(elems_a, tree_options));
  NEURODB_ASSIGN_OR_RETURN(rtree::RTree tree_b,
                           rtree::RTree::BulkLoadStr(elems_b, tree_options));
  out.stats.build_ns = build.ElapsedNanos();
  out.stats.peak_bytes = tree_a.MemoryBytes() + tree_b.MemoryBytes() +
                         ea.capacity() * sizeof(geom::Aabb);

  Timer probe;
  S3Context ctx{&a, &b, &ea, &tree_a, &tree_b, &options, options.epsilon,
                &out};
  ++out.stats.node_tests;
  if (tree_a.node(tree_a.root())
          .bounds.Expanded(options.epsilon)
          .Intersects(tree_b.node(tree_b.root()).bounds)) {
    JoinNodes(ctx, tree_a.root(), tree_b.root());
  }
  out.stats.probe_ns = probe.ElapsedNanos();
  out.stats.total_ns = total.ElapsedNanos();
  out.stats.results = out.pairs.size();
  return out;
}

}  // namespace touch
}  // namespace neurodb
