// NeuroDB — spatial distance join framework.
//
// Reproduces the paper's data-discovery component (Section 4): "a distance
// join on an unindexed and unsorted dataset to find pairs of neuron
// branches within distance e of each other" — synapse placement. TOUCH
// (touch_join.cc) is the contribution; nested loop, plane sweep, PBSM and
// S3 synchronized R-tree traversal are the baselines named by the paper.
//
// All algorithms implement the same predicate and must return the same pair
// set (the property tests verify this):
//   filter: a.box expanded by epsilon intersects b.box,
//   refine: capsule distance(a, b) <= epsilon (when geometry is present and
//           JoinOptions::refine is set).

#ifndef NEURODB_TOUCH_SPATIAL_JOIN_H_
#define NEURODB_TOUCH_SPATIAL_JOIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "geom/aabb.h"
#include "geom/element.h"
#include "geom/segment.h"

namespace neurodb {
namespace touch {

/// One join input: bounding boxes + external ids, optionally with capsule
/// geometry for exact refinement (parallel arrays).
struct JoinInput {
  std::vector<geom::Aabb> boxes;
  std::vector<geom::ElementId> ids;
  std::vector<geom::Segment> segments;  // empty, or parallel to boxes

  size_t size() const { return boxes.size(); }
  bool HasGeometry() const {
    return !segments.empty() && segments.size() == boxes.size();
  }

  /// Boxes/ids only (filter-level joins).
  static JoinInput FromElements(const geom::ElementVec& elements);

  /// Full capsule inputs; boxes are derived from the capsules.
  static JoinInput FromSegments(std::vector<geom::Segment> segments,
                                std::vector<geom::ElementId> ids);

  Status Validate() const;
};

/// Knobs shared by all join algorithms plus per-algorithm tuning.
struct JoinOptions {
  /// Synapse distance threshold in micrometres.
  float epsilon = 2.0f;
  /// Apply exact capsule-distance refinement when geometry is available.
  bool refine = true;

  // --- TOUCH ---
  /// Internal fanout of the hierarchical partitioning tree over A.
  size_t touch_fanout = 8;
  /// Data leaf size of the partitioning tree.
  size_t touch_leaf = 64;

  // --- PBSM ---
  /// Target average objects per grid cell (drives the grid resolution);
  /// 0 picks the default.
  size_t pbsm_target_per_cell = 64;
  /// Hard cap on cells per axis.
  size_t pbsm_max_cells_per_dim = 128;

  // --- S3 ---
  /// Fanout of the two R-trees.
  size_t s3_fanout = 16;

  Status Validate() const;
};

/// One joined pair, reported by external ids.
struct JoinPair {
  geom::ElementId a = 0;
  geom::ElementId b = 0;

  bool operator==(const JoinPair& o) const { return a == o.a && b == o.b; }
  bool operator<(const JoinPair& o) const {
    return a != o.a ? a < o.a : b < o.b;
  }
};

/// Phase timings and work counters (the demo's live join panel, Figure 7:
/// "time spent on the join, memory footprint as well as the number of
/// pairwise comparisons").
struct JoinStats {
  uint64_t build_ns = 0;   // structure construction (tree / grid / sort)
  uint64_t assign_ns = 0;  // TOUCH assignment phase (0 for others)
  uint64_t probe_ns = 0;   // pair-finding phase
  uint64_t total_ns = 0;

  uint64_t mbr_tests = 0;     // pairwise box comparisons
  uint64_t node_tests = 0;    // node-level box comparisons (trees/grid)
  uint64_t refine_tests = 0;  // exact capsule distance evaluations
  uint64_t results = 0;

  /// Estimated peak bytes of auxiliary structures.
  uint64_t peak_bytes = 0;

  /// TOUCH only: B objects discarded in empty space (the filtering step).
  uint64_t filtered = 0;
};

/// Output of a join.
struct JoinResult {
  std::vector<JoinPair> pairs;
  JoinStats stats;
};

/// Available algorithms.
enum class JoinMethod {
  kNestedLoop,
  kPlaneSweep,
  kScalableSweep,
  kPbsm,
  kS3,
  kTouch,
};

/// Human-readable algorithm name ("TOUCH", "PBSM", ...).
const char* JoinMethodName(JoinMethod method);

/// All methods, in the order the benches report them.
std::vector<JoinMethod> AllJoinMethods();

// Individual algorithms. All validate inputs and honour JoinOptions.
Result<JoinResult> NestedLoopJoin(const JoinInput& a, const JoinInput& b,
                                  const JoinOptions& options);
Result<JoinResult> PlaneSweepJoin(const JoinInput& a, const JoinInput& b,
                                  const JoinOptions& options);
Result<JoinResult> ScalableSweepJoin(const JoinInput& a, const JoinInput& b,
                                     const JoinOptions& options);
Result<JoinResult> PbsmJoin(const JoinInput& a, const JoinInput& b,
                            const JoinOptions& options);
Result<JoinResult> S3Join(const JoinInput& a, const JoinInput& b,
                          const JoinOptions& options);
Result<JoinResult> TouchJoin(const JoinInput& a, const JoinInput& b,
                             const JoinOptions& options);

/// Dispatch by method.
Result<JoinResult> RunJoin(JoinMethod method, const JoinInput& a,
                           const JoinInput& b, const JoinOptions& options);

}  // namespace touch
}  // namespace neurodb

#endif  // NEURODB_TOUCH_SPATIAL_JOIN_H_
