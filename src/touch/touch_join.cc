// TOUCH — in-memory spatial join by hierarchical data-oriented partitioning
// (Nobari et al., SIGMOD'13; paper Section 4.1).
//
// Phase 1 (build): dataset A is packed into an STR hierarchy. Data-oriented
// partitioning opens up *empty space* between partitions and — unlike
// PBSM's space-oriented grid — never replicates elements.
//
// Phase 2 (assign): each object b of B descends from the root towards the
// single child whose epsilon-expanded MBR it intersects. If no child
// matches, b lies in empty space and is *filtered* (it can join nothing).
// If several match, b stops and is bucketed at the current internal node.
//
// Phase 3 (probe): buckets are joined against the subtree below their node.
// The whole bucket descends as a group, filtering the group against each
// child's (pre-expanded) MBR, so the tree is walked once per bucket rather
// than once per object and every leaf's entries are scanned with the group
// of survivors that actually reach it.

#include <algorithm>

#include "common/stats.h"
#include "rtree/rtree.h"
#include "touch/join_common.h"
#include "touch/spatial_join.h"

namespace neurodb {
namespace touch {

namespace {

/// Per-leaf local-join acceleration: the entries' epsilon-expanded boxes
/// sorted by min.x (with the original entry position alongside), plus the
/// widest x-extent in the leaf. A probe then only scans the x-window
/// [b.min.x - max_width, b.max.x] — the in-partition sweep the TOUCH paper
/// uses for its local joins.
struct LeafIndex {
  std::vector<geom::Aabb> boxes;     // expanded, sorted by min.x
  std::vector<uint32_t> positions;   // position in A, parallel to boxes
  float max_width = 0.0f;
};

struct TouchContext {
  const JoinInput* a;
  const JoinInput* b;
  const rtree::RTree* tree;
  const std::vector<geom::Aabb>* node_expanded;  // node MBRs + epsilon
  const std::vector<LeafIndex>* leaves;          // indexed by node id
  const JoinOptions* options;
  JoinResult* out;
};

/// Join the group `bs` (indices into B) against the subtree at `node_id`.
/// `scratch` provides one reusable survivor buffer per tree level.
void ProbeGroup(const TouchContext& ctx, int32_t node_id,
                const std::vector<uint32_t>& bs,
                std::vector<std::vector<uint32_t>>* scratch, int depth) {
  const rtree::RTree::Node& n = ctx.tree->node(node_id);
  JoinStats* stats = &ctx.out->stats;

  if (n.IsLeaf()) {
    const bool refine =
        ctx.options->refine && ctx.a->HasGeometry() && ctx.b->HasGeometry();
    const LeafIndex& leaf = (*ctx.leaves)[node_id];
    const size_t entries = leaf.boxes.size();
    for (uint32_t j : bs) {
      const geom::Aabb bj = ctx.b->boxes[j];
      // x-window: entries sorted by min.x can only intersect bj if their
      // min.x lies in [bj.min.x - widest extent, bj.max.x].
      const float lo = bj.min.x - leaf.max_width;
      size_t k = std::lower_bound(leaf.boxes.begin(), leaf.boxes.end(), lo,
                                  [](const geom::Aabb& box, float v) {
                                    return box.min.x < v;
                                  }) -
                 leaf.boxes.begin();
      for (; k < entries && leaf.boxes[k].min.x <= bj.max.x; ++k) {
        ++stats->mbr_tests;
        if (!leaf.boxes[k].Intersects(bj)) continue;
        uint32_t i = leaf.positions[k];
        if (refine) {
          ++stats->refine_tests;
          if (geom::CapsuleDistance(ctx.a->segments[i], ctx.b->segments[j]) >
              static_cast<double>(ctx.options->epsilon)) {
            continue;
          }
        }
        ctx.out->pairs.push_back(JoinPair{ctx.a->ids[i], ctx.b->ids[j]});
      }
    }
    return;
  }

  // `scratch` is pre-sized to the tree height by the caller; resizing here
  // would invalidate the survivor buffers of shallower recursion levels.
  std::vector<uint32_t>& survivors = (*scratch)[depth];
  for (int32_t child : n.children) {
    const geom::Aabb& child_box = (*ctx.node_expanded)[child];
    survivors.clear();
    for (uint32_t j : bs) {
      ++stats->node_tests;
      if (child_box.Intersects(ctx.b->boxes[j])) survivors.push_back(j);
    }
    if (!survivors.empty()) {
      // Hand the survivor list down by copy-free swap: deeper levels use
      // their own scratch slot, so this level's buffer stays intact.
      ProbeGroup(ctx, child, survivors, scratch, depth + 1);
    }
  }
}

}  // namespace

Result<JoinResult> TouchJoin(const JoinInput& a, const JoinInput& b,
                             const JoinOptions& options) {
  NEURODB_RETURN_NOT_OK(internal::ValidateJoinArgs(a, b, options));

  JoinResult out;
  Timer total;
  if (a.size() == 0 || b.size() == 0) {
    out.stats.filtered = b.size();
    out.stats.total_ns = total.ElapsedNanos();
    return out;
  }

  // Phase 1: build the data-oriented hierarchy over A.
  Timer build;
  rtree::RTreeOptions tree_options;
  tree_options.max_entries = options.touch_fanout;
  // min_entries only gates dynamic splits (unused by bulk loading) but must
  // satisfy RTreeOptions validation against both capacities.
  tree_options.min_entries = std::max<size_t>(
      1, std::min(options.touch_fanout, options.touch_leaf) * 2 / 5);
  tree_options.leaf_capacity = options.touch_leaf;

  geom::ElementVec elems_a;
  elems_a.reserve(a.size());
  for (uint32_t i = 0; i < a.size(); ++i) {
    elems_a.emplace_back(static_cast<geom::ElementId>(i), a.boxes[i]);
  }
  NEURODB_ASSIGN_OR_RETURN(rtree::RTree tree,
                           rtree::RTree::BulkLoadStr(elems_a, tree_options));

  // Epsilon-expanded node MBRs, computed once: the prune test of both the
  // assignment and the probe phases. Leaf entries additionally get a
  // min.x-sorted expanded-box array for the local sweep.
  std::vector<geom::Aabb> node_expanded(tree.NumNodes());
  std::vector<LeafIndex> leaves(tree.NumNodes());
  for (size_t id = 0; id < tree.NumNodes(); ++id) {
    const rtree::RTree::Node& n = tree.node(static_cast<int32_t>(id));
    node_expanded[id] = n.bounds.Expanded(options.epsilon);
    if (!n.IsLeaf()) continue;
    LeafIndex& leaf = leaves[id];
    std::vector<uint32_t> order(n.entries.size());
    for (uint32_t k = 0; k < n.entries.size(); ++k) order[k] = k;
    std::sort(order.begin(), order.end(), [&](uint32_t x, uint32_t y) {
      return n.entries[x].bounds.min.x < n.entries[y].bounds.min.x;
    });
    leaf.boxes.reserve(order.size());
    leaf.positions.reserve(order.size());
    for (uint32_t k : order) {
      geom::Aabb expanded = n.entries[k].bounds.Expanded(options.epsilon);
      leaf.max_width =
          std::max(leaf.max_width, expanded.max.x - expanded.min.x);
      leaf.boxes.push_back(expanded);
      leaf.positions.push_back(static_cast<uint32_t>(n.entries[k].id));
    }
  }
  out.stats.build_ns = build.ElapsedNanos();

  // Phase 2: hierarchical assignment of B (with empty-space filtering).
  Timer assign;
  std::vector<std::vector<uint32_t>> buckets(tree.NumNodes());
  for (uint32_t j = 0; j < b.size(); ++j) {
    const geom::Aabb& bj = b.boxes[j];
    int32_t cur = tree.root();
    // Check the root itself first: B objects outside A's space are dead.
    ++out.stats.node_tests;
    if (!node_expanded[cur].Intersects(bj)) {
      ++out.stats.filtered;
      continue;
    }
    for (;;) {
      const rtree::RTree::Node& n = tree.node(cur);
      if (n.IsLeaf()) {
        buckets[cur].push_back(j);
        break;
      }
      int32_t matched = -1;
      int matches = 0;
      for (int32_t child : n.children) {
        ++out.stats.node_tests;
        if (node_expanded[child].Intersects(bj)) {
          ++matches;
          matched = child;
          if (matches > 1) break;
        }
      }
      if (matches == 0) {
        // Empty space between the children's partitions: filtered.
        ++out.stats.filtered;
        break;
      }
      if (matches == 1) {
        cur = matched;
        continue;
      }
      // Overlaps several partitions: bucket here.
      buckets[cur].push_back(j);
      break;
    }
  }
  out.stats.assign_ns = assign.ElapsedNanos();

  uint64_t bucket_bytes = buckets.capacity() * sizeof(std::vector<uint32_t>);
  for (const auto& bucket : buckets) {
    bucket_bytes += bucket.capacity() * sizeof(uint32_t);
  }
  uint64_t expanded_bytes = node_expanded.capacity() * sizeof(geom::Aabb) +
                            leaves.capacity() * sizeof(LeafIndex);
  for (const auto& leaf : leaves) {
    expanded_bytes += leaf.boxes.capacity() * sizeof(geom::Aabb) +
                      leaf.positions.capacity() * sizeof(uint32_t);
  }
  out.stats.peak_bytes = tree.MemoryBytes() + bucket_bytes + expanded_bytes;

  // Phase 3: probe each bucket (as a group) against the subtree below it.
  Timer probe;
  TouchContext ctx{&a, &b, &tree, &node_expanded, &leaves, &options, &out};
  std::vector<std::vector<uint32_t>> scratch(tree.Height() + 1);
  for (size_t node_id = 0; node_id < buckets.size(); ++node_id) {
    if (!buckets[node_id].empty()) {
      ProbeGroup(ctx, static_cast<int32_t>(node_id), buckets[node_id],
                 &scratch, 0);
    }
  }
  out.stats.probe_ns = probe.ElapsedNanos();
  out.stats.total_ns = total.ElapsedNanos();
  out.stats.results = out.pairs.size();
  return out;
}

}  // namespace touch
}  // namespace neurodb
