// Plane sweep join — sort both inputs along x and sweep, testing y/z
// overlap inside the sweep window. The paper notes it "can become
// inefficient if too many elements are on the sweep line (likely in case of
// dense data/detailed models)" — the dense-data benches show exactly that.

#include <algorithm>
#include <numeric>

#include "common/stats.h"
#include "touch/join_common.h"
#include "touch/spatial_join.h"

namespace neurodb {
namespace touch {

Result<JoinResult> PlaneSweepJoin(const JoinInput& a, const JoinInput& b,
                                  const JoinOptions& options) {
  NEURODB_RETURN_NOT_OK(internal::ValidateJoinArgs(a, b, options));

  JoinResult out;
  Timer total;

  Timer build;
  std::vector<geom::Aabb> ea = internal::ExpandAll(a.boxes, options.epsilon);
  std::vector<uint32_t> oa(a.size());
  std::vector<uint32_t> ob(b.size());
  std::iota(oa.begin(), oa.end(), 0u);
  std::iota(ob.begin(), ob.end(), 0u);
  std::sort(oa.begin(), oa.end(), [&](uint32_t x, uint32_t y) {
    return ea[x].min.x < ea[y].min.x;
  });
  std::sort(ob.begin(), ob.end(), [&](uint32_t x, uint32_t y) {
    return b.boxes[x].min.x < b.boxes[y].min.x;
  });
  out.stats.build_ns = build.ElapsedNanos();
  out.stats.peak_bytes = ea.capacity() * sizeof(geom::Aabb) +
                         (oa.capacity() + ob.capacity()) * sizeof(uint32_t);

  Timer probe;
  size_t ia = 0;
  size_t ib = 0;
  while (ia < oa.size() && ib < ob.size()) {
    uint32_t i = oa[ia];
    uint32_t j = ob[ib];
    if (ea[i].min.x <= b.boxes[j].min.x) {
      // a[i] opens first: scan b's whose x-interval starts inside a[i]'s.
      for (size_t k = ib; k < ob.size(); ++k) {
        uint32_t jj = ob[k];
        if (b.boxes[jj].min.x > ea[i].max.x) break;
        if (internal::PairMatches(a, b, ea, i, jj, options, &out.stats)) {
          out.pairs.push_back(JoinPair{a.ids[i], b.ids[jj]});
        }
      }
      ++ia;
    } else {
      // b[j] opens first: scan a's whose x-interval starts inside b[j]'s.
      for (size_t k = ia; k < oa.size(); ++k) {
        uint32_t ii = oa[k];
        if (ea[ii].min.x > b.boxes[j].max.x) break;
        if (internal::PairMatches(a, b, ea, ii, j, options, &out.stats)) {
          out.pairs.push_back(JoinPair{a.ids[ii], b.ids[j]});
        }
      }
      ++ib;
    }
  }
  out.stats.probe_ns = probe.ElapsedNanos();
  out.stats.total_ns = total.ElapsedNanos();
  out.stats.results = out.pairs.size();
  return out;
}

}  // namespace touch
}  // namespace neurodb
