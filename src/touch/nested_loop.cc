// Nested loop join — the O(|A|*|B|) baseline the paper cites as the status
// quo for in-memory spatial joins ([11] in the paper).

#include "common/stats.h"
#include "touch/join_common.h"
#include "touch/spatial_join.h"

namespace neurodb {
namespace touch {

Result<JoinResult> NestedLoopJoin(const JoinInput& a, const JoinInput& b,
                                  const JoinOptions& options) {
  NEURODB_RETURN_NOT_OK(internal::ValidateJoinArgs(a, b, options));

  JoinResult out;
  Timer total;

  Timer build;
  std::vector<geom::Aabb> ea = internal::ExpandAll(a.boxes, options.epsilon);
  out.stats.build_ns = build.ElapsedNanos();
  out.stats.peak_bytes = ea.capacity() * sizeof(geom::Aabb);

  Timer probe;
  for (uint32_t i = 0; i < a.size(); ++i) {
    for (uint32_t j = 0; j < b.size(); ++j) {
      if (internal::PairMatches(a, b, ea, i, j, options, &out.stats)) {
        out.pairs.push_back(JoinPair{a.ids[i], b.ids[j]});
      }
    }
  }
  out.stats.probe_ns = probe.ElapsedNanos();
  out.stats.total_ns = total.ElapsedNanos();
  out.stats.results = out.pairs.size();
  return out;
}

}  // namespace touch
}  // namespace neurodb
