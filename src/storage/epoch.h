// NeuroDB — Epoch: the storage-wide version counter behind mutable data.
//
// The engine's read path is built over an immutable base (pages laid out at
// build time) plus an in-memory delta (engine/delta_index.h). Every batch of
// updates advances a monotonically increasing Epoch; queries, sessions and
// cache entries are stamped with the epoch they answered at, so a consumer
// can tell exactly which version of the circuit a result describes — and a
// cache can tell which of its entries predate a mutation.

#ifndef NEURODB_STORAGE_EPOCH_H_
#define NEURODB_STORAGE_EPOCH_H_

#include <cstdint>

namespace neurodb {
namespace storage {

/// Monotonically increasing data version. 0 is the freshly built (never
/// mutated) state; every applied update batch bumps it by one. Compaction
/// bumps it too — results are unchanged but the physical page layout is new.
using Epoch = uint64_t;

/// Sentinel read epoch: "the live, most recent state". A query pinned at
/// kLatestEpoch reads the writer-visible pending delta rather than a
/// published snapshot — the single-threaded fast path.
inline constexpr Epoch kLatestEpoch = ~static_cast<Epoch>(0);

}  // namespace storage
}  // namespace neurodb

#endif  // NEURODB_STORAGE_EPOCH_H_
