#include "storage/pool_manager.h"

namespace neurodb {
namespace storage {

PoolManager::PoolManager(size_t default_pool_pages, DiskCostModel cost)
    : default_pool_pages_(default_pool_pages == 0 ? 1 : default_pool_pages),
      cost_(cost) {}

PoolSet* PoolManager::GetOrCreate(const std::string& name,
                                  const std::vector<PageStore*>& stores,
                                  size_t pages) {
  auto it = sets_.find(name);
  if (it != sets_.end()) {
    ++sets_reused_;
    return it->second.get();
  }
  ++sets_created_;
  auto set = std::make_unique<PoolSet>(
      stores, pages == 0 ? default_pool_pages_ : pages, &clock_, cost_);
  PoolSet* out = set.get();
  sets_.emplace(name, std::move(set));
  return out;
}

PoolSet* PoolManager::Find(const std::string& name) {
  auto it = sets_.find(name);
  return it == sets_.end() ? nullptr : it->second.get();
}

bool PoolManager::Evict(const std::string& name) {
  auto it = sets_.find(name);
  if (it == sets_.end()) return false;
  explicit_evictions_ += it->second->PagesCached();
  it->second->EvictAll();
  return true;
}

void PoolManager::EvictAll() {
  for (auto& [name, set] : sets_) {
    explicit_evictions_ += set->PagesCached();
    set->EvictAll();
  }
}

bool PoolManager::Remove(const std::string& name) {
  auto it = sets_.find(name);
  if (it == sets_.end()) return false;
  // Retire the set's history into the manager-level counters so Stats()
  // stays monotonic — removal must not make past hits/misses vanish.
  explicit_evictions_ += it->second->PagesCached();
  retired_hits_ += it->second->TotalTicker("pool.hits");
  retired_misses_ += it->second->TotalTicker("pool.misses");
  retired_evictions_ += it->second->TotalTicker("pool.evictions");
  sets_.erase(it);
  return true;
}

uint64_t PoolManager::TotalTicker(const std::string& ticker) const {
  uint64_t total = 0;
  for (const auto& [name, set] : sets_) total += set->TotalTicker(ticker);
  return total;
}

PoolManagerStats PoolManager::Stats() const {
  PoolManagerStats stats;
  stats.pool_sets = sets_.size();
  stats.sets_created = sets_created_;
  stats.sets_reused = sets_reused_;
  stats.evictions = explicit_evictions_ + retired_evictions_;
  stats.hits = retired_hits_;
  stats.misses = retired_misses_;
  for (const auto& [name, set] : sets_) {
    stats.pools += set->size();
    stats.pages_cached += set->PagesCached();
    stats.hits += set->TotalTicker("pool.hits");
    stats.misses += set->TotalTicker("pool.misses");
    stats.evictions += set->TotalTicker("pool.evictions");
  }
  return stats;
}

}  // namespace storage
}  // namespace neurodb
