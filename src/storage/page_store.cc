#include "storage/page_store.h"

namespace neurodb {
namespace storage {

PageId PageStore::Allocate() {
  PageId id = static_cast<PageId>(pages_.size());
  pages_.emplace_back();
  pages_.back().id = id;
  return id;
}

Status PageStore::Write(PageId id, std::vector<geom::SpatialElement> elements) {
  if (id >= pages_.size()) {
    return Status::OutOfRange("PageStore::Write: page id " + std::to_string(id) +
                              " >= " + std::to_string(pages_.size()));
  }
  pages_[id].elements = std::move(elements);
  CountWrite();
  return Status::OK();
}

Result<const Page*> PageStore::Read(PageId id) const {
  if (id >= pages_.size()) {
    return Status::OutOfRange("PageStore::Read: page id " + std::to_string(id) +
                              " >= " + std::to_string(pages_.size()));
  }
  CountRead();
  return &pages_[id];
}

size_t PageStore::TotalBytes() const {
  size_t total = 0;
  for (const auto& p : pages_) total += p.SizeBytes();
  return total;
}

}  // namespace storage
}  // namespace neurodb
