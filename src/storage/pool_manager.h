// NeuroDB — PoolManager: named, persistent buffer-pool families.
//
// The engine used to scatter pool lifetime logic across QueryEngine
// (MakePools for cold queries, warm_pools_ for the persistent warm path,
// fresh pool vectors per ExecuteBatch lane). PoolManager centralizes that:
// it owns named PoolSets — one per backend, each a family of BufferPools
// over the backend's PageStores — on one SimClock and cost model, so
//
//   * the engine's warm path is a long-lived manager whose sets (including
//     the sharded backend's per-shard pools) survive across Execute and
//     ExecuteBatch calls;
//   * a cold query or a parallel batch lane is a short-lived local manager
//     with the same interface — per-lane PoolManager handles replace the
//     hand-rolled per-lane pool vectors;
//   * hit/miss/eviction statistics aggregate across every pool the manager
//     owns (PoolManagerStats), which is what the batch reports and the
//     cache benchmarks read.

#ifndef NEURODB_STORAGE_POOL_MANAGER_H_
#define NEURODB_STORAGE_POOL_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "storage/epoch.h"
#include "storage/page_store.h"
#include "storage/pool_set.h"

namespace neurodb {
namespace storage {

/// Aggregate view over every pool set a manager owns.
struct PoolManagerStats {
  /// Named sets currently owned.
  size_t pool_sets = 0;
  /// Buffer pools across all sets (a multi-store set holds several).
  size_t pools = 0;
  /// Pages resident across all pools right now.
  uint64_t pages_cached = 0;
  /// Summed "pool.hits" / "pool.misses" tickers.
  uint64_t hits = 0;
  uint64_t misses = 0;
  /// Pages dropped by capacity eviction plus explicit Evict/EvictAll calls.
  uint64_t evictions = 0;
  /// GetOrCreate lifecycle counters: sets built vs. handed back.
  uint64_t sets_created = 0;
  uint64_t sets_reused = 0;
};

/// Owns named PoolSets sharing one clock and cost model. Movable via
/// unique_ptr only (the sets hold the manager's clock pointer).
class PoolManager {
 public:
  /// `default_pool_pages` is the per-set page budget used when GetOrCreate
  /// is called without an explicit budget; it is split across a multi-store
  /// set's pools (PoolSet semantics).
  explicit PoolManager(size_t default_pool_pages,
                       DiskCostModel cost = DiskCostModel{});

  PoolManager(const PoolManager&) = delete;
  PoolManager& operator=(const PoolManager&) = delete;

  /// The named set, built over `stores` on first use (`pages` == 0 means
  /// the manager default). Later calls return the existing set regardless
  /// of the arguments — the name is the identity.
  PoolSet* GetOrCreate(const std::string& name,
                       const std::vector<PageStore*>& stores,
                       size_t pages = 0);

  /// The named set, or nullptr.
  PoolSet* Find(const std::string& name);

  /// Drop every page of the named set (the set itself survives). Returns
  /// false if the name is unknown.
  bool Evict(const std::string& name);

  /// Drop every page of every set.
  void EvictAll();

  /// Destroy the named set entirely, retiring its hit/miss/eviction
  /// history into the manager-level counters (Stats() never decreases
  /// across a Remove). Returns false if unknown.
  bool Remove(const std::string& name);

  size_t NumSets() const { return sets_.size(); }

  /// The clock every owned pool charges. Owned by the manager.
  SimClock* clock() { return &clock_; }
  const DiskCostModel& cost() const { return cost_; }
  size_t default_pool_pages() const { return default_pool_pages_; }

  /// Data version the manager's pools serve. The engine advances it once
  /// per applied update batch (and per compaction); results are stamped
  /// with the epoch they answered at. Atomic: concurrent readers pin the
  /// epoch while the writer commits the next one.
  Epoch epoch() const { return epoch_.load(std::memory_order_acquire); }
  Epoch AdvanceEpoch() {
    return epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }
  /// Fast-forward to at least `e` (recovery restores the persisted epoch);
  /// never moves backwards. Returns the resulting epoch.
  Epoch AdvanceEpochTo(Epoch e) {
    Epoch current = epoch_.load(std::memory_order_relaxed);
    while (e > current &&
           !epoch_.compare_exchange_weak(current, e,
                                         std::memory_order_acq_rel)) {
    }
    return epoch_.load(std::memory_order_acquire);
  }

  /// One named ticker summed over every pool of every set.
  uint64_t TotalTicker(const std::string& ticker) const;

  PoolManagerStats Stats() const;

 private:
  size_t default_pool_pages_;
  DiskCostModel cost_;
  SimClock clock_;
  std::atomic<Epoch> epoch_{0};
  /// std::map keeps iteration deterministic (stats, EvictAll order).
  std::map<std::string, std::unique_ptr<PoolSet>> sets_;
  uint64_t sets_created_ = 0;
  uint64_t sets_reused_ = 0;
  uint64_t explicit_evictions_ = 0;
  /// History of Remove()d sets, folded into Stats().
  uint64_t retired_hits_ = 0;
  uint64_t retired_misses_ = 0;
  uint64_t retired_evictions_ = 0;
};

}  // namespace storage
}  // namespace neurodb

#endif  // NEURODB_STORAGE_POOL_MANAGER_H_
