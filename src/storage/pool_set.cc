#include "storage/pool_set.h"

namespace neurodb {
namespace storage {

PoolSet::PoolSet(const std::vector<PageStore*>& stores,
                 size_t total_capacity_pages, SimClock* clock,
                 DiskCostModel cost)
    : clock_(clock), cost_(cost) {
  size_t per_pool =
      stores.empty() ? 1 : total_capacity_pages / stores.size();
  if (per_pool == 0) per_pool = 1;
  owned_.reserve(stores.size());
  pools_.reserve(stores.size());
  for (PageStore* store : stores) {
    owned_.push_back(
        std::make_unique<BufferPool>(store, per_pool, clock, cost));
    pools_.push_back(owned_.back().get());
  }
}

PoolSet::PoolSet(BufferPool* borrowed) : cost_(borrowed->cost()) {
  pools_.push_back(borrowed);
}

void PoolSet::EvictAll() {
  for (BufferPool* pool : pools_) pool->EvictAll();
}

size_t PoolSet::PagesCached() const {
  size_t total = 0;
  for (const BufferPool* pool : pools_) total += pool->NumCached();
  return total;
}

uint64_t PoolSet::TotalTicker(const std::string& name) const {
  uint64_t total = 0;
  for (const BufferPool* pool : pools_) total += pool->stats().Get(name);
  return total;
}

Stats PoolSet::AggregateStats() const {
  Stats merged;
  for (const BufferPool* pool : pools_) merged.Merge(pool->stats());
  return merged;
}

PoolCounters PoolSet::Counters() const {
  PoolCounters c;
  for (const BufferPool* pool : pools_) {
    const Stats& stats = pool->stats();
    c.hits += stats.Get("pool.hits");
    c.misses += stats.Get("pool.misses");
    c.evictions += stats.Get("pool.evictions");
  }
  return c;
}

}  // namespace storage
}  // namespace neurodb
