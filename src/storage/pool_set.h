// NeuroDB — PoolSet: one BufferPool per PageStore of a (possibly
// multi-store) backend.
//
// Single-store backends (FLAT, R-tree, Grid) see a PoolSet of size one —
// pool(0) is the familiar BufferPool. ShardedBackend partitions its data
// across one PageStore per shard, so its queries need one pool per shard;
// the engine builds a PoolSet over SpatialBackend::Stores() wherever it
// used to build a single pool. The set shares one SimClock and cost model,
// and splits the caller's total page budget evenly across pools so a
// sharded backend does not get K times the cache of its peers.

#ifndef NEURODB_STORAGE_POOL_SET_H_
#define NEURODB_STORAGE_POOL_SET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "common/stats.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"

namespace neurodb {
namespace storage {

/// Logical buffer-pool activity counters. Unlike `IoStats` (physical bytes
/// and fsyncs, all-zero on in-memory stores), these count page-cache events
/// that happen identically whether pages live in RAM or on disk — the
/// uniform per-query cost signal `RangeReport::pool` / `KnnReport::pool`
/// report so memory and disk runs are comparable.
struct PoolCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;

  PoolCounters& operator+=(const PoolCounters& other) {
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
    return *this;
  }

  /// Component-wise delta (for before/after windows around one query).
  PoolCounters operator-(const PoolCounters& other) const {
    PoolCounters d;
    d.hits = hits - other.hits;
    d.misses = misses - other.misses;
    d.evictions = evictions - other.evictions;
    return d;
  }

  uint64_t accesses() const { return hits + misses; }
};

/// A fixed family of buffer pools, one per store, built once and queried
/// many times. Movable (the pools keep stable addresses), not copyable.
class PoolSet {
 public:
  /// One pool per entry of `stores`; each pool gets
  /// max(1, total_capacity_pages / stores.size()) pages. `clock` may be
  /// null (no time modelling) and must outlive the set.
  PoolSet(const std::vector<PageStore*>& stores, size_t total_capacity_pages,
          SimClock* clock = nullptr, DiskCostModel cost = DiskCostModel{});

  /// Non-owning single-pool view: multi-store backends delegate one shard's
  /// pool to an inner single-store backend through this. The borrowed pool
  /// must outlive the view.
  explicit PoolSet(BufferPool* borrowed);

  PoolSet(PoolSet&&) = default;
  PoolSet& operator=(PoolSet&&) = default;

  size_t size() const { return pools_.size(); }

  BufferPool* pool(size_t i = 0) const { return pools_[i]; }

  SimClock* clock() const { return clock_; }
  const DiskCostModel& cost() const { return cost_; }

  /// Drop every cached page in every pool (cold cache).
  void EvictAll();

  /// Pages resident across every pool right now.
  size_t PagesCached() const;

  /// Sum of one named ticker ("pool.hits", "pool.misses", ...) over every
  /// pool — the per-shard aggregation the batch statistics report.
  uint64_t TotalTicker(const std::string& name) const;

  /// All pool tickers merged into one Stats (ticker-wise addition).
  Stats AggregateStats() const;

  /// Logical hit/miss/evict totals over every pool right now — sampled
  /// before and after a query, the difference is that query's pool
  /// activity on memory and disk stores alike.
  PoolCounters Counters() const;

 private:
  /// Queried pools, in store order. Owned pools also live in owned_;
  /// borrowed-view pools are someone else's.
  std::vector<BufferPool*> pools_;
  std::vector<std::unique_ptr<BufferPool>> owned_;
  SimClock* clock_ = nullptr;
  DiskCostModel cost_;
};

}  // namespace storage
}  // namespace neurodb

#endif  // NEURODB_STORAGE_POOL_SET_H_
