// NeuroDB — Pagination: lay a dataset of spatial elements out on disk pages
// so that spatially close elements share pages.
//
// This is the physical layout beneath FLAT's crawl pages and beneath the
// Hilbert-order prefetching baseline: both need a page sequence in which
// page adjacency correlates with spatial adjacency.

#ifndef NEURODB_STORAGE_PAGINATION_H_
#define NEURODB_STORAGE_PAGINATION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "geom/aabb.h"
#include "geom/element.h"
#include "storage/page.h"
#include "storage/page_store.h"

namespace neurodb {
namespace storage {

/// Order in which elements are packed into pages.
enum class PackOrder {
  /// Sort by the Hilbert key of the element center, pack sequentially.
  kHilbert,
  /// Sort-Tile-Recursive tiling (Leutenegger et al., ICDE'97) with the page
  /// as the tile: slabs in x, runs in y, tiles in z.
  kStr,
  /// Keep the input order (baseline for layout-sensitivity ablations).
  kInput,
};

/// Layout produced by PaginateElements.
struct Layout {
  /// Page ids in pack order (ascending ids; adjacency == pack adjacency).
  std::vector<PageId> page_ids;
  /// Bounding box of each page (parallel to page_ids).
  std::vector<geom::Aabb> page_bounds;
  /// Bounding box of the whole dataset.
  geom::Aabb domain;
  /// Which page each input element landed on, keyed by element id.
  /// (Only filled when `track_element_pages` is set in the call.)
  std::vector<std::pair<geom::ElementId, PageId>> element_pages;
};

/// Group `elements` into runs of at most `elems_per_page`, in the given
/// order, and write each run as one page into `store`. Never fails on
/// non-empty input; empty input yields an empty layout.
Result<Layout> PaginateElements(const geom::ElementVec& elements,
                                PageStore* store, size_t elems_per_page,
                                PackOrder order,
                                bool track_element_pages = false);

/// Sort-Tile-Recursive grouping used by PackOrder::kStr, exposed for reuse
/// by the rtree bulk loader: returns the element order (indices into
/// `elements`) such that consecutive runs of `group_size` form STR tiles.
std::vector<uint32_t> StrOrder(const geom::ElementVec& elements,
                               size_t group_size);

}  // namespace storage
}  // namespace neurodb

#endif  // NEURODB_STORAGE_PAGINATION_H_
