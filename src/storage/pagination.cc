#include "storage/pagination.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "geom/hilbert.h"

namespace neurodb {
namespace storage {

namespace {

geom::Aabb DomainOf(const geom::ElementVec& elements) {
  geom::Aabb box;
  for (const auto& e : elements) box.Extend(e.bounds);
  return box;
}

std::vector<uint32_t> HilbertOrder(const geom::ElementVec& elements,
                                   const geom::Aabb& domain) {
  geom::HilbertMapper mapper(domain);
  std::vector<std::pair<uint64_t, uint32_t>> keyed(elements.size());
  for (uint32_t i = 0; i < elements.size(); ++i) {
    keyed[i] = {mapper.Key(elements[i].bounds), i};
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<uint32_t> order(elements.size());
  for (uint32_t i = 0; i < keyed.size(); ++i) order[i] = keyed[i].second;
  return order;
}

}  // namespace

std::vector<uint32_t> StrOrder(const geom::ElementVec& elements,
                               size_t group_size) {
  const size_t n = elements.size();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  if (n == 0 || group_size == 0) return order;

  const size_t num_groups = (n + group_size - 1) / group_size;
  // S slabs along x, each split into S runs along y, each tiled along z.
  const size_t s =
      std::max<size_t>(1, static_cast<size_t>(std::ceil(
                              std::cbrt(static_cast<double>(num_groups)))));

  auto center = [&](uint32_t idx, int axis) {
    return elements[idx].bounds.Center()[axis];
  };

  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return center(a, 0) < center(b, 0);
  });

  // Slab and run sizes must be multiples of group_size (Leutenegger et al.:
  // a slab holds s^2 tiles, a run s tiles). The consumer cuts groups every
  // group_size elements of the final order — if runs were not aligned, a
  // group could straddle a run boundary and span the whole z (and possibly
  // y) extent of the slab, destroying the tiling's low overlap.
  const size_t slab = s * s * group_size;  // elements per x-slab
  const size_t run = s * group_size;       // elements per y-run
  for (size_t x0 = 0; x0 < n; x0 += slab) {
    size_t x1 = std::min(n, x0 + slab);
    std::sort(order.begin() + x0, order.begin() + x1,
              [&](uint32_t a, uint32_t b) { return center(a, 1) < center(b, 1); });
    for (size_t y0 = x0; y0 < x1; y0 += run) {
      size_t y1 = std::min(x1, y0 + run);
      std::sort(order.begin() + y0, order.begin() + y1,
                [&](uint32_t a, uint32_t b) {
                  return center(a, 2) < center(b, 2);
                });
    }
  }
  return order;
}

Result<Layout> PaginateElements(const geom::ElementVec& elements,
                                PageStore* store, size_t elems_per_page,
                                PackOrder order, bool track_element_pages) {
  if (store == nullptr) {
    return Status::InvalidArgument("PaginateElements: null store");
  }
  if (elems_per_page == 0) {
    return Status::InvalidArgument("PaginateElements: elems_per_page == 0");
  }

  Layout layout;
  layout.domain = DomainOf(elements);
  if (elements.empty()) return layout;

  std::vector<uint32_t> perm;
  switch (order) {
    case PackOrder::kHilbert:
      perm = HilbertOrder(elements, layout.domain);
      break;
    case PackOrder::kStr:
      perm = StrOrder(elements, elems_per_page);
      break;
    case PackOrder::kInput:
      perm.resize(elements.size());
      std::iota(perm.begin(), perm.end(), 0u);
      break;
  }

  for (size_t at = 0; at < perm.size(); at += elems_per_page) {
    size_t end = std::min(perm.size(), at + elems_per_page);
    std::vector<geom::SpatialElement> run;
    run.reserve(end - at);
    geom::Aabb bounds;
    for (size_t i = at; i < end; ++i) {
      const auto& e = elements[perm[i]];
      run.push_back(e);
      bounds.Extend(e.bounds);
    }
    PageId id = store->Allocate();
    if (track_element_pages) {
      for (const auto& e : run) layout.element_pages.emplace_back(e.id, id);
    }
    NEURODB_RETURN_NOT_OK(store->Write(id, std::move(run)));
    layout.page_ids.push_back(id);
    layout.page_bounds.push_back(bounds);
  }
  return layout;
}

}  // namespace storage
}  // namespace neurodb
