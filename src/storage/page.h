// NeuroDB — Page: the unit of simulated disk I/O.
//
// The demo's headline metric for FLAT is "disk pages retrieved" (paper
// Figure 3). We model a page as a fixed-capacity container of spatial
// elements; byte accounting uses a serialized layout of 32 bytes per
// element (8-byte id + 6 floats bounds) plus a 16-byte header, which is the
// on-disk footprint a straightforward binary format would have.

#ifndef NEURODB_STORAGE_PAGE_H_
#define NEURODB_STORAGE_PAGE_H_

#include <cstdint>
#include <vector>

#include "geom/aabb.h"
#include "geom/element.h"

namespace neurodb {
namespace storage {

/// Identifier of a page within a PageStore.
using PageId = uint32_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPageId = static_cast<PageId>(-1);

/// Serialized size of one element in bytes (id + min/max corner floats).
inline constexpr size_t kElementBytes = 32;

/// Fixed per-page header budget in bytes.
inline constexpr size_t kPageHeaderBytes = 16;

/// A disk page holding spatial elements.
struct Page {
  PageId id = kInvalidPageId;
  std::vector<geom::SpatialElement> elements;

  /// Bounding box of all elements on the page.
  geom::Aabb Bounds() const {
    geom::Aabb box;
    for (const auto& e : elements) box.Extend(e.bounds);
    return box;
  }

  /// Serialized footprint in bytes.
  size_t SizeBytes() const {
    return kPageHeaderBytes + elements.size() * kElementBytes;
  }
};

/// How many elements fit into a page of `page_bytes` bytes.
inline size_t ElementsPerPage(size_t page_bytes) {
  if (page_bytes <= kPageHeaderBytes + kElementBytes) return 1;
  return (page_bytes - kPageHeaderBytes) / kElementBytes;
}

/// Cost model for the simulated disk (see common/sim_clock.h). Defaults
/// approximate a 2013-era enterprise HDD with a filesystem cache in front:
/// a random 8 KiB page read costs ~5 ms when cold.
struct DiskCostModel {
  /// Simulated microseconds charged for a demand page miss.
  uint64_t page_read_micros = 5000;
  /// Simulated microseconds for a buffer-pool hit (in-memory lookup).
  uint64_t page_hit_micros = 10;
};

}  // namespace storage
}  // namespace neurodb

#endif  // NEURODB_STORAGE_PAGE_H_
