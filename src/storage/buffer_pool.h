// NeuroDB — BufferPool: LRU page cache with prefetch accounting and a
// simulated time model.
//
// Demand fetches charge DiskCostModel::page_read_micros to the attached
// SimClock on a miss; prefetches load pages without charging the demand
// clock (the caller — e.g. the SCOUT walkthrough session — accounts for
// prefetch time out of the user's think time). The pool tracks how many
// prefetched pages were later used, reproducing the demo's
// "prefetched total / correctly prefetched / additionally retrieved" panel
// (paper Figure 6).

#ifndef NEURODB_STORAGE_BUFFER_POOL_H_
#define NEURODB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <unordered_set>

#include "common/result.h"
#include "common/sim_clock.h"
#include "common/stats.h"
#include "common/status.h"
#include "storage/page.h"
#include "storage/page_store.h"

namespace neurodb {
namespace storage {

/// LRU buffer pool over a PageStore.
class BufferPool {
 public:
  /// `capacity_pages` must be >= 1. `clock` may be null (no time modelling).
  BufferPool(PageStore* store, size_t capacity_pages, SimClock* clock = nullptr,
             DiskCostModel cost = DiskCostModel{});

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Demand-fetch a page. On miss: reads from the store, charges
  /// `cost.page_read_micros` to the clock, possibly evicts the LRU page.
  /// On hit: charges `cost.page_hit_micros`.
  Result<const Page*> Fetch(PageId id);

  /// Load a page into the pool without charging the demand clock. Marks it
  /// as prefetched; a later demand Fetch of the page counts as
  /// "pool.prefetch_used". Prefetching an already cached page is a no-op
  /// (counted as "pool.prefetch_redundant").
  Status Prefetch(PageId id);

  /// True if the page is currently cached.
  bool Contains(PageId id) const { return map_.find(id) != map_.end(); }

  /// The page if (and only if) it is currently cached, else nullptr. Does
  /// not touch the LRU order, the statistics or the clock — the think-time
  /// result-prefetch path evaluates predicted queries over already-resident
  /// pages without perturbing the demand model.
  const Page* Peek(PageId id) const;

  /// Drop every cached page (cold cache). Prefetch markers are cleared too.
  void EvictAll();

  /// The store epoch this pool's cached pages belong to. Fetch/Prefetch/
  /// Peek evict everything and re-sync when the store's epoch has moved
  /// (a Reset rebuilt the page layout) — the lazy pool-level epoch check
  /// that lets sessions survive Compact.
  Epoch store_epoch() const { return store_epoch_; }

  size_t NumCached() const { return lru_.size(); }
  size_t capacity() const { return capacity_; }
  const DiskCostModel& cost() const { return cost_; }

  const Stats& stats() const { return stats_; }
  Stats& stats() { return stats_; }

 private:
  void Touch(PageId id);
  void Insert(PageId id);
  void EvictIfFull();
  void RefreshIfStale();

  PageStore* store_;
  size_t capacity_;
  SimClock* clock_;
  DiskCostModel cost_;
  /// Store epoch the cached pages were read at (see store_epoch()).
  Epoch store_epoch_ = 0;

  // Front = most recently used.
  std::list<PageId> lru_;
  std::unordered_map<PageId, std::list<PageId>::iterator> map_;
  // Pages brought in by Prefetch() and not yet demanded.
  std::unordered_set<PageId> prefetched_pending_;

  Stats stats_;
};

}  // namespace storage
}  // namespace neurodb

#endif  // NEURODB_STORAGE_BUFFER_POOL_H_
