#include "storage/disk/wal.h"

#include "storage/disk/format.h"

namespace neurodb {
namespace storage {

namespace {

// Records larger than this are treated as torn garbage, not allocations.
constexpr uint32_t kMaxWalPayloadBytes = 1u << 28;

}  // namespace

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::OpenOrCreate(
    FileSystem* fs, const std::string& path) {
  auto file = fs->Open(path, /*truncate=*/false);
  NEURODB_RETURN_NOT_OK(file.status());
  std::unique_ptr<WriteAheadLog> wal(
      new WriteAheadLog(std::move(*file), path));

  auto size = wal->file_->Size();
  NEURODB_RETURN_NOT_OK(size.status());
  if (*size >= kWalHeaderBytes) {
    uint8_t header[kWalHeaderBytes];
    auto got = wal->file_->ReadAt(0, header, sizeof(header));
    NEURODB_RETURN_NOT_OK(got.status());
    wal->bytes_read_ += *got;
    if (*got < sizeof(header)) {
      return Status::Corruption("WriteAheadLog: '" + path +
                                "' short read on header");
    }
    if (GetU64(header) != kWalMagic) {
      return Status::Corruption("WriteAheadLog: '" + path +
                                "' has a bad magic number (not a WAL)");
    }
    uint32_t version = GetU32(header + 8);
    if (version != kFormatVersion) {
      return Status::InvalidArgument(
          "WriteAheadLog: '" + path + "' has format version " +
          std::to_string(version) + "; this build reads version " +
          std::to_string(kFormatVersion));
    }
    if (Crc32(header, 12) != GetU32(header + 12)) {
      return Status::Corruption("WriteAheadLog: '" + path +
                                "' header CRC mismatch");
    }
    wal->end_ = *size;
    return wal;
  }

  // Missing or shorter than a header: (re)create. A partial header can
  // only mean a crash during creation — no record was ever durable.
  uint8_t header[kWalHeaderBytes] = {};
  PutU64(header, kWalMagic);
  PutU32(header + 8, kFormatVersion);
  PutU32(header + 12, Crc32(header, 12));
  NEURODB_RETURN_NOT_OK(wal->file_->Truncate(0));
  NEURODB_RETURN_NOT_OK(wal->file_->WriteAt(0, header, sizeof(header)));
  wal->bytes_written_ += sizeof(header);
  NEURODB_RETURN_NOT_OK(wal->file_->Sync());
  ++wal->fsyncs_;
  wal->end_ = kWalHeaderBytes;
  return wal;
}

Status WriteAheadLog::Append(Epoch epoch, const std::vector<uint8_t>& payload) {
  if (payload.size() > kMaxWalPayloadBytes) {
    return Status::InvalidArgument("WriteAheadLog::Append: payload too large");
  }
  uint8_t epoch_bytes[8];
  PutU64(epoch_bytes, epoch);
  uint32_t crc = Crc32(epoch_bytes, sizeof(epoch_bytes));
  crc = Crc32(payload.data(), payload.size(), crc);

  std::vector<uint8_t> record;
  record.reserve(kWalRecordHeaderBytes + payload.size());
  EncodeU32(&record, static_cast<uint32_t>(payload.size()));
  EncodeU64(&record, epoch);
  EncodeU32(&record, crc);
  record.insert(record.end(), payload.begin(), payload.end());

  NEURODB_RETURN_NOT_OK(file_->WriteAt(end_, record.data(), record.size()));
  bytes_written_ += record.size();
  NEURODB_RETURN_NOT_OK(file_->Sync());
  ++fsyncs_;
  end_ += record.size();
  return Status::OK();
}

Status WriteAheadLog::Replay(const std::function<Status(const Record&)>& fn,
                             ReplayStats* stats) {
  ReplayStats local;
  auto size = file_->Size();
  NEURODB_RETURN_NOT_OK(size.status());

  uint64_t offset = kWalHeaderBytes;
  while (offset + kWalRecordHeaderBytes <= *size) {
    uint8_t header[kWalRecordHeaderBytes];
    auto got = file_->ReadAt(offset, header, sizeof(header));
    NEURODB_RETURN_NOT_OK(got.status());
    bytes_read_ += *got;
    if (*got < sizeof(header)) break;

    uint32_t len = GetU32(header);
    Epoch epoch = GetU64(header + 4);
    uint32_t stored_crc = GetU32(header + 12);
    if (len > kMaxWalPayloadBytes ||
        offset + kWalRecordHeaderBytes + len > *size) {
      break;  // torn: length field points past the file
    }

    Record record;
    record.epoch = epoch;
    record.offset = offset;
    record.payload.resize(len);
    auto pgot = file_->ReadAt(offset + kWalRecordHeaderBytes,
                              record.payload.data(), len);
    NEURODB_RETURN_NOT_OK(pgot.status());
    bytes_read_ += *pgot;
    if (*pgot < len) break;

    uint8_t epoch_bytes[8];
    PutU64(epoch_bytes, epoch);
    uint32_t crc = Crc32(epoch_bytes, sizeof(epoch_bytes));
    crc = Crc32(record.payload.data(), record.payload.size(), crc);
    if (crc != stored_crc) break;  // torn: record did not fully persist

    NEURODB_RETURN_NOT_OK(fn(record));
    ++local.records;
    offset += kWalRecordHeaderBytes + len;
  }

  local.end_offset = offset;
  local.torn_tail = offset < *size;
  local.dropped_bytes = *size - offset;
  end_ = offset;
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Status WriteAheadLog::TruncateTail(uint64_t end_offset) {
  NEURODB_RETURN_NOT_OK(file_->Truncate(end_offset));
  NEURODB_RETURN_NOT_OK(file_->Sync());
  ++fsyncs_;
  end_ = end_offset;
  return Status::OK();
}

Status WriteAheadLog::Reset() { return TruncateTail(kWalHeaderBytes); }

}  // namespace storage
}  // namespace neurodb
