#include "storage/disk/wal.h"

#include "storage/disk/format.h"

namespace neurodb {
namespace storage {

namespace {

// Records larger than this are treated as torn garbage, not allocations.
constexpr uint32_t kMaxWalPayloadBytes = 1u << 28;

// Serialize one record (header + payload) onto `out`.
Status AssembleRecord(Epoch epoch, const std::vector<uint8_t>& payload,
                      std::vector<uint8_t>* out) {
  if (payload.size() > kMaxWalPayloadBytes) {
    return Status::InvalidArgument("WriteAheadLog::Append: payload too large");
  }
  uint8_t epoch_bytes[8];
  PutU64(epoch_bytes, epoch);
  uint32_t crc = Crc32(epoch_bytes, sizeof(epoch_bytes));
  crc = Crc32(payload.data(), payload.size(), crc);

  EncodeU32(out, static_cast<uint32_t>(payload.size()));
  EncodeU64(out, epoch);
  EncodeU32(out, crc);
  out->insert(out->end(), payload.begin(), payload.end());
  return Status::OK();
}

void FillWalHeader(uint8_t header[kWalHeaderBytes]) {
  PutU64(header, kWalMagic);
  PutU32(header + 8, kFormatVersion);
  PutU32(header + 12, Crc32(header, 12));
}

}  // namespace

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::OpenOrCreate(
    FileSystem* fs, const std::string& path) {
  auto file = fs->Open(path, /*truncate=*/false);
  NEURODB_RETURN_NOT_OK(file.status());
  std::unique_ptr<WriteAheadLog> wal(
      new WriteAheadLog(fs, std::move(*file), path));

  auto size = wal->file_->Size();
  NEURODB_RETURN_NOT_OK(size.status());
  if (*size >= kWalHeaderBytes) {
    uint8_t header[kWalHeaderBytes];
    auto got = wal->file_->ReadAt(0, header, sizeof(header));
    NEURODB_RETURN_NOT_OK(got.status());
    wal->bytes_read_.fetch_add(*got, std::memory_order_relaxed);
    if (*got < sizeof(header)) {
      return Status::Corruption("WriteAheadLog: '" + path +
                                "' short read on header");
    }
    if (GetU64(header) != kWalMagic) {
      return Status::Corruption("WriteAheadLog: '" + path +
                                "' has a bad magic number (not a WAL)");
    }
    uint32_t version = GetU32(header + 8);
    if (version != kFormatVersion) {
      return Status::InvalidArgument(
          "WriteAheadLog: '" + path + "' has format version " +
          std::to_string(version) + "; this build reads version " +
          std::to_string(kFormatVersion));
    }
    if (Crc32(header, 12) != GetU32(header + 12)) {
      return Status::Corruption("WriteAheadLog: '" + path +
                                "' header CRC mismatch");
    }
    wal->end_ = *size;
    return wal;
  }

  // Missing or shorter than a header: (re)create. A partial header can
  // only mean a crash during creation — no record was ever durable.
  uint8_t header[kWalHeaderBytes] = {};
  FillWalHeader(header);
  NEURODB_RETURN_NOT_OK(wal->file_->Truncate(0));
  NEURODB_RETURN_NOT_OK(wal->file_->WriteAt(0, header, sizeof(header)));
  wal->bytes_written_.fetch_add(sizeof(header), std::memory_order_relaxed);
  NEURODB_RETURN_NOT_OK(wal->file_->Sync());
  wal->fsyncs_.fetch_add(1, std::memory_order_relaxed);
  wal->end_ = kWalHeaderBytes;
  return wal;
}

Status WriteAheadLog::Append(Epoch epoch, const std::vector<uint8_t>& payload,
                             bool sync) {
  PendingRecord record{epoch, payload};
  return AppendBatch(std::span<const PendingRecord>(&record, 1), sync);
}

Status WriteAheadLog::AppendBatch(std::span<const PendingRecord> records,
                                  bool sync) {
  if (records.empty()) return Status::OK();
  std::vector<uint8_t> image;
  size_t total = 0;
  for (const PendingRecord& record : records) {
    total += kWalRecordHeaderBytes + record.payload.size();
  }
  image.reserve(total);
  for (const PendingRecord& record : records) {
    NEURODB_RETURN_NOT_OK(AssembleRecord(record.epoch, record.payload, &image));
  }

  // One write for the whole group; the cursor only advances on success, so
  // a failed (possibly torn) group write is overwritten by the next append
  // and dropped by Replay's CRC check if the process dies first.
  NEURODB_RETURN_NOT_OK(file_->WriteAt(end_, image.data(), image.size()));
  bytes_written_.fetch_add(image.size(), std::memory_order_relaxed);
  if (sync) {
    NEURODB_RETURN_NOT_OK(file_->Sync());
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
  }
  end_ += image.size();
  return Status::OK();
}

Status WriteAheadLog::Replay(const std::function<Status(const Record&)>& fn,
                             ReplayStats* stats) {
  ReplayStats local;
  auto size = file_->Size();
  NEURODB_RETURN_NOT_OK(size.status());

  uint64_t offset = kWalHeaderBytes;
  while (offset + kWalRecordHeaderBytes <= *size) {
    uint8_t header[kWalRecordHeaderBytes];
    auto got = file_->ReadAt(offset, header, sizeof(header));
    NEURODB_RETURN_NOT_OK(got.status());
    bytes_read_.fetch_add(*got, std::memory_order_relaxed);
    if (*got < sizeof(header)) break;

    uint32_t len = GetU32(header);
    Epoch epoch = GetU64(header + 4);
    uint32_t stored_crc = GetU32(header + 12);
    if (len > kMaxWalPayloadBytes ||
        offset + kWalRecordHeaderBytes + len > *size) {
      break;  // torn: length field points past the file
    }

    Record record;
    record.epoch = epoch;
    record.offset = offset;
    record.payload.resize(len);
    auto pgot = file_->ReadAt(offset + kWalRecordHeaderBytes,
                              record.payload.data(), len);
    NEURODB_RETURN_NOT_OK(pgot.status());
    bytes_read_.fetch_add(*pgot, std::memory_order_relaxed);
    if (*pgot < len) break;

    uint8_t epoch_bytes[8];
    PutU64(epoch_bytes, epoch);
    uint32_t crc = Crc32(epoch_bytes, sizeof(epoch_bytes));
    crc = Crc32(record.payload.data(), record.payload.size(), crc);
    if (crc != stored_crc) break;  // torn: record did not fully persist

    NEURODB_RETURN_NOT_OK(fn(record));
    ++local.records;
    offset += kWalRecordHeaderBytes + len;
  }

  local.end_offset = offset;
  local.torn_tail = offset < *size;
  local.dropped_bytes = *size - offset;
  end_ = offset;
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Status WriteAheadLog::TruncateTail(uint64_t end_offset) {
  NEURODB_RETURN_NOT_OK(file_->Truncate(end_offset));
  NEURODB_RETURN_NOT_OK(file_->Sync());
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  end_ = end_offset;
  return Status::OK();
}

Status WriteAheadLog::Reset() { return TruncateTail(kWalHeaderBytes); }

Status WriteAheadLog::CutPrefix(uint64_t from) {
  if (from >= end_) return Reset();
  if (from <= kWalHeaderBytes) return Status::OK();  // nothing to drop

  // Read the surviving suffix through the existing handle.
  const uint64_t suffix_len = end_ - from;
  std::vector<uint8_t> suffix(suffix_len);
  auto got = file_->ReadAt(from, suffix.data(), suffix.size());
  NEURODB_RETURN_NOT_OK(got.status());
  bytes_read_.fetch_add(*got, std::memory_order_relaxed);
  if (*got < suffix.size()) {
    return Status::Corruption("WriteAheadLog::CutPrefix: short read on '" +
                              path_ + "'");
  }

  // Build the replacement log in a side file and make it durable there
  // before the rename — the one ordering under which a crash at any point
  // leaves either the complete old log or the complete new one.
  const std::string side = CutSidePath(path_);
  auto side_file = fs_->Open(side, /*truncate=*/true);
  NEURODB_RETURN_NOT_OK(side_file.status());
  uint8_t header[kWalHeaderBytes] = {};
  FillWalHeader(header);
  NEURODB_RETURN_NOT_OK((*side_file)->WriteAt(0, header, sizeof(header)));
  NEURODB_RETURN_NOT_OK(
      (*side_file)->WriteAt(kWalHeaderBytes, suffix.data(), suffix.size()));
  bytes_written_.fetch_add(sizeof(header) + suffix.size(),
                           std::memory_order_relaxed);
  NEURODB_RETURN_NOT_OK((*side_file)->Sync());
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  side_file->reset();  // close before the rename replaces the name

  NEURODB_RETURN_NOT_OK(fs_->Rename(side, path_));

  // The old handle still points at the unlinked inode — reopen the name.
  auto reopened = fs_->Open(path_, /*truncate=*/false);
  NEURODB_RETURN_NOT_OK(reopened.status());
  file_ = std::move(*reopened);
  end_ = kWalHeaderBytes + suffix.size();
  return Status::OK();
}

}  // namespace storage
}  // namespace neurodb
