#include "storage/disk/file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

namespace neurodb {
namespace storage {

namespace {

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::IOError(op + " '" + path + "': " + std::strerror(errno));
}

class PosixFile : public File {
 public:
  PosixFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Result<size_t> ReadAt(uint64_t offset, void* buf, size_t n) const override {
    size_t done = 0;
    char* out = static_cast<char*>(buf);
    while (done < n) {
      ssize_t r = ::pread(fd_, out + done, n - done,
                          static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pread", path_);
      }
      if (r == 0) break;  // EOF
      done += static_cast<size_t>(r);
    }
    return done;
  }

  Status WriteAt(uint64_t offset, const void* buf, size_t n) override {
    size_t done = 0;
    const char* in = static_cast<const char*>(buf);
    while (done < n) {
      ssize_t w = ::pwrite(fd_, in + done, n - done,
                           static_cast<off_t>(offset + done));
      if (w < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pwrite", path_);
      }
      done += static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_);
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("ftruncate", path_);
    }
    return Status::OK();
  }

  Result<uint64_t> Size() const override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) return ErrnoStatus("fstat", path_);
    return static_cast<uint64_t>(st.st_size);
  }

 private:
  int fd_;
  std::string path_;
};

class PosixFileSystem : public FileSystem {
 public:
  Result<std::unique_ptr<File>> Open(const std::string& path,
                                     bool truncate) override {
    int flags = O_RDWR | O_CREAT | (truncate ? O_TRUNC : 0);
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return ErrnoStatus("open", path);
    return std::unique_ptr<File>(new PosixFile(fd, path));
  }

  bool Exists(const std::string& path) const override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Status Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return ErrnoStatus("unlink", path);
    }
    return Status::OK();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from + "' -> '" + to);
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& path) override {
    std::error_code ec;
    std::filesystem::create_directories(path, ec);
    if (ec) {
      return Status::IOError("create_directories '" + path +
                             "': " + ec.message());
    }
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(
      const std::string& path) const override {
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(path, ec)) {
      if (entry.is_regular_file()) {
        names.push_back(entry.path().filename().string());
      }
    }
    if (ec) {
      return Status::IOError("directory_iterator '" + path +
                             "': " + ec.message());
    }
    return names;
  }
};

class FaultInjectingFile : public File {
 public:
  FaultInjectingFile(std::unique_ptr<File> base, FaultPlan* plan, bool matched)
      : base_(std::move(base)), plan_(plan), matched_(matched) {}

  Result<size_t> ReadAt(uint64_t offset, void* buf, size_t n) const override {
    return base_->ReadAt(offset, buf, n);
  }

  Status WriteAt(uint64_t offset, const void* buf, size_t n) override {
    if (!matched_) return base_->WriteAt(offset, buf, n);
    if (plan_->Crashed()) return Crash("WriteAt");
    plan_->writes_seen.fetch_add(1, std::memory_order_relaxed);
    int64_t budget = plan_->write_budget.load(std::memory_order_relaxed);
    if (budget >= 0) {
      if (budget == 0) {
        // The crashing write: persist only the torn prefix, then die.
        plan_->crashed.store(true, std::memory_order_relaxed);
        size_t tear = plan_->tear_bytes < n ? plan_->tear_bytes : 0;
        if (tear > 0) {
          Status s = base_->WriteAt(offset, buf, tear);
          if (!s.ok()) return s;
        }
        return Crash("WriteAt");
      }
      plan_->write_budget.store(budget - 1, std::memory_order_relaxed);
    }
    return base_->WriteAt(offset, buf, n);
  }

  Status Sync() override {
    if (matched_ && plan_->Crashed()) return Crash("Sync");
    return base_->Sync();
  }

  Status Truncate(uint64_t size) override {
    if (matched_ && plan_->Crashed()) return Crash("Truncate");
    return base_->Truncate(size);
  }

  Result<uint64_t> Size() const override { return base_->Size(); }

 private:
  static Status Crash(const char* op) {
    return Status::IOError(std::string("fault injection: crashed before ") +
                           op);
  }

  std::unique_ptr<File> base_;
  FaultPlan* plan_;
  bool matched_;
};

}  // namespace

FileSystem* DefaultFileSystem() {
  static PosixFileSystem* fs = new PosixFileSystem();
  return fs;
}

Status FaultInjectingFileSystem::Rename(const std::string& from,
                                        const std::string& to) {
  bool matched = plan_->path_filter.empty() ||
                 from.find(plan_->path_filter) != std::string::npos ||
                 to.find(plan_->path_filter) != std::string::npos;
  if (matched) {
    if (plan_->Crashed()) {
      return Status::IOError("fault injection: crashed before Rename");
    }
    plan_->writes_seen.fetch_add(1, std::memory_order_relaxed);
    int64_t budget = plan_->write_budget.load(std::memory_order_relaxed);
    if (budget >= 0) {
      if (budget == 0) {
        // The crashing op: a rename is atomic, so nothing of it survives.
        plan_->crashed.store(true, std::memory_order_relaxed);
        return Status::IOError("fault injection: crashed before Rename");
      }
      plan_->write_budget.store(budget - 1, std::memory_order_relaxed);
    }
  }
  return base_->Rename(from, to);
}

Result<std::unique_ptr<File>> FaultInjectingFileSystem::Open(
    const std::string& path, bool truncate) {
  bool matched = plan_->path_filter.empty() ||
                 path.find(plan_->path_filter) != std::string::npos;
  if (matched && plan_->Crashed() && truncate) {
    return Status::IOError("fault injection: crashed before Open(truncate)");
  }
  auto base = base_->Open(path, truncate);
  NEURODB_RETURN_NOT_OK(base.status());
  return std::unique_ptr<File>(
      new FaultInjectingFile(std::move(*base), plan_, matched));
}

}  // namespace storage
}  // namespace neurodb
