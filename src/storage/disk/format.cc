#include "storage/disk/format.h"

#include <array>
#include <string>

namespace neurodb {
namespace storage {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320U ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t n, uint32_t seed) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  uint32_t c = seed ^ 0xFFFFFFFFU;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFU;
}

std::vector<uint8_t> EncodePageImage(
    PageId id, const std::vector<geom::SpatialElement>& elements) {
  std::vector<uint8_t> out;
  out.reserve(kPageHeaderBytes + elements.size() * kElementBytes);
  EncodeU32(&out, kPageImageMagic);
  EncodeU32(&out, static_cast<uint32_t>(elements.size()));
  EncodeU64(&out, static_cast<uint64_t>(id));
  for (const auto& e : elements) EncodeElement(&out, e);
  return out;
}

Result<Page> DecodePageImage(const uint8_t* data, size_t n,
                             PageId expected_id) {
  if (n < kPageHeaderBytes) {
    return Status::Corruption("page image truncated: " + std::to_string(n) +
                              " bytes");
  }
  if (GetU32(data) != kPageImageMagic) {
    return Status::Corruption("page image has bad magic");
  }
  uint32_t count = GetU32(data + 4);
  uint64_t stored_id = GetU64(data + 8);
  if (stored_id != expected_id) {
    return Status::Corruption("page image id mismatch: stored " +
                              std::to_string(stored_id) + ", expected " +
                              std::to_string(expected_id));
  }
  if (n < kPageHeaderBytes + static_cast<size_t>(count) * kElementBytes) {
    return Status::Corruption("page image shorter than its element count");
  }
  Page page;
  page.id = expected_id;
  page.elements.reserve(count);
  const uint8_t* p = data + kPageHeaderBytes;
  for (uint32_t i = 0; i < count; ++i, p += kElementBytes) {
    page.elements.push_back(DecodeElement(p));
  }
  return page;
}

}  // namespace storage
}  // namespace neurodb
