// NeuroDB — DiskPageStore: the PageStore implementation backed by a real
// page file (the brepdb DiskStorageManager side of the split; the base
// PageStore is the MemoryStorageManager side).
//
// Reads perform actual block I/O through PageFile the first time a page is
// touched and decode the image into a heap-stable frame; the frame then
// serves repeat Reads (BufferPool hits re-call Read and must not pay a
// device read each time) until the next Write or Reset invalidates it.
// Writes always hit the device (copy-on-write into fresh blocks) and drop
// the frame, so a build-then-query workload measures genuine cold reads.
// The raw NumReads/NumWrites counters tick exactly like the in-memory
// store's — substituting a DiskPageStore must not shift any modeled
// pages_read statistic — while io() reports the real bytes/fsyncs.

#ifndef NEURODB_STORAGE_DISK_DISK_PAGE_STORE_H_
#define NEURODB_STORAGE_DISK_DISK_PAGE_STORE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "common/status.h"
#include "storage/disk/file.h"
#include "storage/disk/page_file.h"
#include "storage/page_store.h"

namespace neurodb {
namespace storage {

struct DiskStoreOptions {
  uint32_t block_bytes = 4096;
  /// Null means DefaultFileSystem() (real POSIX I/O).
  FileSystem* fs = nullptr;
};

class DiskPageStore : public PageStore {
 public:
  /// Create (truncate) a fresh page file at `path`.
  static Result<std::unique_ptr<DiskPageStore>> Create(
      const std::string& path, const DiskStoreOptions& options = {});

  /// Open an existing page file. The store's epoch starts at the persisted
  /// header epoch (never below it — reopened stores must not reuse an
  /// epoch a BufferPool may have cached under).
  static Result<std::unique_ptr<DiskPageStore>> Open(
      const std::string& path, const DiskStoreOptions& options = {});

  PageId Allocate() override;
  Status Write(PageId id, std::vector<geom::SpatialElement> elements) override;
  Result<const Page*> Read(PageId id) const override;
  const Page* Peek(PageId id) const override;
  size_t NumPages() const override { return num_pages_; }
  size_t TotalBytes() const override { return file_->PayloadBytes(); }
  IoStats io() const override { return file_->io(); }

  /// Commit the staged page directory + free list durably, stamping the
  /// store's current epoch into the file header.
  Status Flush() override { return file_->Sync(epoch()); }

  void Reset() override;

  const PageFile& page_file() const { return *file_; }

 private:
  DiskPageStore(std::unique_ptr<PageFile> file, size_t num_pages)
      : file_(std::move(file)), num_pages_(num_pages) {}

  std::unique_ptr<PageFile> file_;
  size_t num_pages_ = 0;

  // Decoded page frames; pointers handed out by Read/Peek stay stable until
  // the frame is invalidated (Write/Reset). Guarded for concurrent Reads.
  mutable std::mutex mu_;
  mutable std::unordered_map<PageId, std::unique_ptr<Page>> frames_;
};

}  // namespace storage
}  // namespace neurodb

#endif  // NEURODB_STORAGE_DISK_DISK_PAGE_STORE_H_
