#include "storage/disk/page_file.h"

#include <algorithm>

#include "storage/disk/format.h"

namespace neurodb {
namespace storage {

namespace {

constexpr uint32_t kMinBlockBytes = 64;
constexpr uint32_t kMaxBlockBytes = 1u << 24;

// Header field offsets within the 48-byte header.
constexpr size_t kOffMagic = 0;
constexpr size_t kOffVersion = 8;
constexpr size_t kOffBlockBytes = 12;
constexpr size_t kOffEpoch = 16;
constexpr size_t kOffFileBlocks = 24;
constexpr size_t kOffDirFirst = 28;
constexpr size_t kOffDirBlocks = 32;
constexpr size_t kOffDirPayload = 36;
constexpr size_t kOffNumPages = 40;
constexpr size_t kOffCrc = 44;

// Sort + coalesce adjacent runs (payload_bytes is meaningless for free
// runs and dropped during merging).
std::vector<PageFile::Run> NormalizeFreeRuns(std::vector<PageFile::Run> runs) {
  std::vector<PageFile::Run> out;
  std::sort(runs.begin(), runs.end(),
            [](const PageFile::Run& a, const PageFile::Run& b) {
              return a.first_block < b.first_block;
            });
  for (const auto& r : runs) {
    if (r.num_blocks == 0) continue;
    if (!out.empty() &&
        out.back().first_block + out.back().num_blocks == r.first_block) {
      out.back().num_blocks += r.num_blocks;
      out.back().payload_bytes = 0;
    } else {
      out.push_back(PageFile::Run{r.first_block, r.num_blocks, 0});
    }
  }
  return out;
}

}  // namespace

Result<std::unique_ptr<PageFile>> PageFile::Create(FileSystem* fs,
                                                   const std::string& path,
                                                   uint32_t block_bytes) {
  if (block_bytes < kMinBlockBytes || block_bytes > kMaxBlockBytes) {
    return Status::InvalidArgument("PageFile::Create: block_bytes " +
                                   std::to_string(block_bytes) +
                                   " out of range");
  }
  auto file = fs->Open(path, /*truncate=*/true);
  NEURODB_RETURN_NOT_OK(file.status());
  std::unique_ptr<PageFile> pf(
      new PageFile(std::move(*file), path, block_bytes));
  pf->file_blocks_ = 1;
  NEURODB_RETURN_NOT_OK(pf->WriteHeader(0, Run{}));
  NEURODB_RETURN_NOT_OK(pf->SyncFile());
  return pf;
}

Result<std::unique_ptr<PageFile>> PageFile::Open(FileSystem* fs,
                                                 const std::string& path) {
  auto file = fs->Open(path, /*truncate=*/false);
  NEURODB_RETURN_NOT_OK(file.status());

  uint8_t header[kPageFileHeaderBytes];
  auto got = (*file)->ReadAt(0, header, sizeof(header));
  NEURODB_RETURN_NOT_OK(got.status());
  if (*got < sizeof(header)) {
    return Status::Corruption("PageFile::Open: '" + path +
                              "' is too short to hold a header");
  }
  if (GetU64(header + kOffMagic) != kPageFileMagic) {
    return Status::Corruption("PageFile::Open: '" + path +
                              "' has a bad magic number (not a page file)");
  }
  uint32_t version = GetU32(header + kOffVersion);
  if (version != kFormatVersion) {
    return Status::InvalidArgument(
        "PageFile::Open: '" + path + "' has format version " +
        std::to_string(version) + "; this build reads version " +
        std::to_string(kFormatVersion));
  }
  if (Crc32(header, kOffCrc) != GetU32(header + kOffCrc)) {
    return Status::Corruption("PageFile::Open: '" + path +
                              "' header CRC mismatch");
  }
  uint32_t block_bytes = GetU32(header + kOffBlockBytes);
  if (block_bytes < kMinBlockBytes || block_bytes > kMaxBlockBytes) {
    return Status::Corruption("PageFile::Open: '" + path +
                              "' header block size out of range");
  }

  std::unique_ptr<PageFile> pf(
      new PageFile(std::move(*file), path, block_bytes));
  pf->epoch_ = GetU64(header + kOffEpoch);
  pf->file_blocks_ = GetU32(header + kOffFileBlocks);
  uint32_t num_pages = GetU32(header + kOffNumPages);
  Run dir_run{GetU32(header + kOffDirFirst), GetU32(header + kOffDirBlocks),
              GetU32(header + kOffDirPayload)};
  pf->committed_dir_run_ = dir_run;

  if (dir_run.num_blocks == 0) {
    if (num_pages != 0) {
      return Status::Corruption("PageFile::Open: '" + path +
                                "' header claims pages but no directory");
    }
    return pf;
  }

  std::vector<uint8_t> dir(dir_run.payload_bytes);
  auto dgot = pf->file_->ReadAt(
      static_cast<uint64_t>(dir_run.first_block) * block_bytes, dir.data(),
      dir.size());
  NEURODB_RETURN_NOT_OK(dgot.status());
  pf->bytes_read_.fetch_add(*dgot, std::memory_order_relaxed);
  if (*dgot < dir.size() || dir.size() < 12) {
    return Status::Corruption("PageFile::Open: '" + path +
                              "' directory truncated");
  }
  uint32_t stored_crc = GetU32(dir.data() + dir.size() - 4);
  if (Crc32(dir.data(), dir.size() - 4) != stored_crc) {
    return Status::Corruption("PageFile::Open: '" + path +
                              "' directory CRC mismatch");
  }

  const uint8_t* p = dir.data();
  const uint8_t* end = dir.data() + dir.size() - 4;
  uint32_t entries = GetU32(p);
  p += 4;
  if (entries != num_pages ||
      static_cast<size_t>(end - p) < entries * 16u + 4u) {
    return Status::Corruption("PageFile::Open: '" + path +
                              "' directory entry count mismatch");
  }
  for (uint32_t i = 0; i < entries; ++i, p += 16) {
    PageId id = GetU32(p);
    pf->dir_[id] = Run{GetU32(p + 4), GetU32(p + 8), GetU32(p + 12)};
  }
  uint32_t free_runs = GetU32(p);
  p += 4;
  if (static_cast<size_t>(end - p) < free_runs * 8u) {
    return Status::Corruption("PageFile::Open: '" + path +
                              "' directory free list truncated");
  }
  std::vector<Run> free;
  for (uint32_t i = 0; i < free_runs; ++i, p += 8) {
    free.push_back(Run{GetU32(p), GetU32(p + 4), 0});
  }
  pf->free_ = NormalizeFreeRuns(std::move(free));
  return pf;
}

PageFile::Run PageFile::AllocateRun(uint32_t num_blocks,
                                    uint32_t payload_bytes) {
  // Sequential mode (checkpoint streams): always extend the tail so
  // consecutive allocations are physically adjacent; the free list is
  // merely skipped, not dropped, and resumes serving after End.
  if (!sequential_alloc_) {
    for (size_t i = 0; i < free_.size(); ++i) {
      if (free_[i].num_blocks >= num_blocks) {
        Run out{free_[i].first_block, num_blocks, payload_bytes};
        free_[i].first_block += num_blocks;
        free_[i].num_blocks -= num_blocks;
        if (free_[i].num_blocks == 0) free_.erase(free_.begin() + i);
        return out;
      }
    }
  }
  Run out{static_cast<uint32_t>(file_blocks_), num_blocks, payload_bytes};
  file_blocks_ += num_blocks;
  return out;
}

Status PageFile::WriteAt(uint64_t offset, const void* data, size_t n) {
  NEURODB_RETURN_NOT_OK(file_->WriteAt(offset, data, n));
  bytes_written_.fetch_add(n, std::memory_order_relaxed);
  write_calls_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status PageFile::SyncFile() {
  NEURODB_RETURN_NOT_OK(file_->Sync());
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status PageFile::WritePage(PageId id, const std::vector<uint8_t>& image) {
  if (image.empty()) {
    return Status::InvalidArgument("PageFile::WritePage: empty image");
  }
  Run run = AllocateRun(BlocksFor(image.size()),
                        static_cast<uint32_t>(image.size()));
  NEURODB_RETURN_NOT_OK(
      WriteAt(static_cast<uint64_t>(run.first_block) * block_bytes_,
              image.data(), image.size()));
  auto it = dir_.find(id);
  if (it != dir_.end()) {
    pending_free_.push_back(it->second);
    it->second = run;
  } else {
    dir_[id] = run;
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> PageFile::ReadPage(PageId id) const {
  auto it = dir_.find(id);
  if (it == dir_.end()) {
    return Status::OutOfRange("PageFile::ReadPage: page " +
                              std::to_string(id) + " not in directory");
  }
  std::vector<uint8_t> out(it->second.payload_bytes);
  auto got = file_->ReadAt(
      static_cast<uint64_t>(it->second.first_block) * block_bytes_,
      out.data(), out.size());
  NEURODB_RETURN_NOT_OK(got.status());
  bytes_read_.fetch_add(*got, std::memory_order_relaxed);
  read_calls_.fetch_add(1, std::memory_order_relaxed);
  if (*got < out.size()) {
    return Status::Corruption("PageFile::ReadPage: page " +
                              std::to_string(id) + " truncated on disk");
  }
  return out;
}

Status PageFile::ScanPages(
    const std::function<Status(PageId, const uint8_t*, size_t)>& fn,
    uint64_t readahead_bytes, ScanStats* stats) const {
  ScanStats local;
  std::vector<uint8_t> window;
  auto it = dir_.begin();
  while (it != dir_.end()) {
    // Greedily extend the group while the next page's run starts exactly
    // where this one ends and the window stays within the readahead
    // budget. A single run larger than the budget still reads whole.
    auto first = it;
    auto last = it;
    uint64_t span_blocks = it->second.num_blocks;
    auto next = std::next(it);
    while (next != dir_.end() &&
           last->second.first_block + last->second.num_blocks ==
               next->second.first_block &&
           (span_blocks + next->second.num_blocks) *
                   static_cast<uint64_t>(block_bytes_) <=
               readahead_bytes) {
      span_blocks += next->second.num_blocks;
      last = next;
      ++next;
    }
    // One read from the group's first block through the last page's
    // payload end (the final block may be short on disk — WriteAt only
    // extends the file as far as the payload).
    const uint64_t start =
        static_cast<uint64_t>(first->second.first_block) * block_bytes_;
    const uint64_t end =
        static_cast<uint64_t>(last->second.first_block) * block_bytes_ +
        last->second.payload_bytes;
    window.resize(end - start);
    auto got = file_->ReadAt(start, window.data(), window.size());
    NEURODB_RETURN_NOT_OK(got.status());
    bytes_read_.fetch_add(*got, std::memory_order_relaxed);
    read_calls_.fetch_add(1, std::memory_order_relaxed);
    if (*got < window.size()) {
      return Status::Corruption("PageFile::ScanPages: page run truncated on "
                                "disk in '" + path_ + "'");
    }
    ++local.read_calls;
    if (window.size() > local.max_window_bytes) {
      local.max_window_bytes = window.size();
    }
    for (auto p = first;; ++p) {
      const uint8_t* data =
          window.data() +
          (static_cast<uint64_t>(p->second.first_block) * block_bytes_ -
           start);
      NEURODB_RETURN_NOT_OK(fn(p->first, data, p->second.payload_bytes));
      ++local.pages;
      if (p == last) break;
    }
    it = next;
  }
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Status PageFile::FreePage(PageId id) {
  auto it = dir_.find(id);
  if (it == dir_.end()) {
    return Status::OutOfRange("PageFile::FreePage: page " +
                              std::to_string(id) + " not in directory");
  }
  pending_free_.push_back(it->second);
  dir_.erase(it);
  return Status::OK();
}

void PageFile::Clear() {
  for (const auto& [id, run] : dir_) pending_free_.push_back(run);
  dir_.clear();
}

uint64_t PageFile::PayloadBytes() const {
  uint64_t total = 0;
  for (const auto& [id, run] : dir_) total += run.payload_bytes;
  return total;
}

Status PageFile::WriteHeader(Epoch epoch, const Run& dir_run) {
  uint8_t header[kPageFileHeaderBytes] = {};
  PutU64(header + kOffMagic, kPageFileMagic);
  PutU32(header + kOffVersion, kFormatVersion);
  PutU32(header + kOffBlockBytes, block_bytes_);
  PutU64(header + kOffEpoch, epoch);
  PutU32(header + kOffFileBlocks, static_cast<uint32_t>(file_blocks_));
  PutU32(header + kOffDirFirst, dir_run.first_block);
  PutU32(header + kOffDirBlocks, dir_run.num_blocks);
  PutU32(header + kOffDirPayload, dir_run.payload_bytes);
  PutU32(header + kOffNumPages, static_cast<uint32_t>(dir_.size()));
  PutU32(header + kOffCrc, Crc32(header, kOffCrc));
  return WriteAt(0, header, sizeof(header));
}

Status PageFile::Sync(Epoch epoch) {
  // The free list to persist is the post-commit view: everything free now,
  // everything staged for release, and the directory run being replaced.
  // The new directory's own run is carved out of `free_` first so it can
  // never land in the persisted free list.
  std::vector<Run> post_free;

  Run dir_run{};
  if (!dir_.empty() || !free_.empty() || !pending_free_.empty() ||
      committed_dir_run_.num_blocks > 0) {
    // Serialize with a placeholder free list first to learn the payload
    // size, allocate the run, then serialize for real. The free-list byte
    // size is known up front, so one sizing pass suffices.
    size_t entry_bytes = 4 + dir_.size() * 16;

    // Upper bound on free-run count after the merge below: current free
    // runs + pending + old dir run + the remainder split of the allocation.
    size_t max_free = free_.size() + pending_free_.size() + 2;
    size_t payload_bytes = entry_bytes + 4 + max_free * 8 + 4;
    dir_run = AllocateRun(BlocksFor(payload_bytes), 0);

    post_free = free_;
    post_free.insert(post_free.end(), pending_free_.begin(),
                     pending_free_.end());
    if (committed_dir_run_.num_blocks > 0) {
      post_free.push_back(committed_dir_run_);
    }
    post_free = NormalizeFreeRuns(std::move(post_free));

    std::vector<uint8_t> dir;
    dir.reserve(payload_bytes);
    EncodeU32(&dir, static_cast<uint32_t>(dir_.size()));
    for (const auto& [id, run] : dir_) {
      EncodeU32(&dir, id);
      EncodeU32(&dir, run.first_block);
      EncodeU32(&dir, run.num_blocks);
      EncodeU32(&dir, run.payload_bytes);
    }
    EncodeU32(&dir, static_cast<uint32_t>(post_free.size()));
    for (const auto& r : post_free) {
      EncodeU32(&dir, r.first_block);
      EncodeU32(&dir, r.num_blocks);
    }
    EncodeU32(&dir, Crc32(dir.data(), dir.size()));
    dir_run.payload_bytes = static_cast<uint32_t>(dir.size());

    NEURODB_RETURN_NOT_OK(
        WriteAt(static_cast<uint64_t>(dir_run.first_block) * block_bytes_,
                dir.data(), dir.size()));
  }

  // Publish: data + directory first, then the header that points at them.
  NEURODB_RETURN_NOT_OK(SyncFile());
  NEURODB_RETURN_NOT_OK(WriteHeader(epoch, dir_run));
  NEURODB_RETURN_NOT_OK(SyncFile());

  free_ = std::move(post_free);
  pending_free_.clear();
  committed_dir_run_ = dir_run;
  epoch_ = epoch;
  return Status::OK();
}

}  // namespace storage
}  // namespace neurodb
