// NeuroDB — File / FileSystem: the byte-level seam under the disk storage
// subsystem.
//
// PageFile and WriteAheadLog talk to this interface, never to POSIX
// directly, so tests can substitute FaultInjectingFileSystem: a
// deterministic wrapper that "crashes" the process after N write
// operations (optionally tearing the Nth write short) and fails every
// write/sync after that point. That is what drives the kill-at-every-
// WAL-record recovery matrix — each crash point is one budget value.

#ifndef NEURODB_STORAGE_DISK_FILE_H_
#define NEURODB_STORAGE_DISK_FILE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace neurodb {
namespace storage {

/// Random-access file handle. Implementations must support concurrent
/// ReadAt calls; writes are single-threaded (the engine serializes all
/// mutation).
class File {
 public:
  virtual ~File() = default;

  /// Read up to `n` bytes at `offset`. Returns the number of bytes read —
  /// short only at end-of-file.
  virtual Result<size_t> ReadAt(uint64_t offset, void* buf, size_t n) const = 0;

  /// Write exactly `n` bytes at `offset`, extending the file if needed.
  virtual Status WriteAt(uint64_t offset, const void* buf, size_t n) = 0;

  /// Durably flush all written data to the device (fsync).
  virtual Status Sync() = 0;

  /// Shrink (or grow, zero-filled) the file to `size` bytes.
  virtual Status Truncate(uint64_t size) = 0;

  /// Current file size in bytes.
  virtual Result<uint64_t> Size() const = 0;
};

/// Factory + minimal directory operations.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Open `path` read-write, creating it if missing. `truncate` empties an
  /// existing file.
  virtual Result<std::unique_ptr<File>> Open(const std::string& path,
                                             bool truncate) = 0;

  virtual bool Exists(const std::string& path) const = 0;
  virtual Status Remove(const std::string& path) = 0;

  /// Atomically replace `to` with `from` (POSIX rename semantics): after a
  /// successful return — or a crash at any point — `to` is either the old
  /// file or the complete new one, never a mix. Open handles on the old
  /// `to` keep reading the replaced (unlinked) inode.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  /// Create a directory (and missing parents). OK if it already exists.
  virtual Status CreateDir(const std::string& path) = 0;

  /// Names (not paths) of regular files in `path`.
  virtual Result<std::vector<std::string>> ListDir(
      const std::string& path) const = 0;
};

/// The real thing: pread/pwrite/fsync/ftruncate. Process-wide singleton.
FileSystem* DefaultFileSystem();

/// Shared fault state for one FaultInjectingFileSystem. `write_budget` is
/// the number of write operations (WriteAt calls on matching files) allowed
/// before the injected crash; a negative budget disables injection. When
/// the budget runs out the offending write either fails outright or — when
/// `tear_bytes` > 0 — persists only the first `tear_bytes` bytes before
/// failing (a torn record). After the crash every write, sync and truncate
/// on a matching file fails with kIOError; reads keep working so the test
/// can reopen the directory like a restarted process would.
struct FaultPlan {
  std::atomic<int64_t> write_budget{-1};
  /// Bytes of the crashing write that still reach the device (short write).
  size_t tear_bytes = 0;
  /// Only files whose path contains this substring are fault-injected
  /// (empty = all files).
  std::string path_filter;
  std::atomic<bool> crashed{false};
  /// Total write operations observed on matching files (for sizing the
  /// crash matrix: run once with no budget, read this, then iterate).
  std::atomic<uint64_t> writes_seen{0};

  bool Crashed() const { return crashed.load(std::memory_order_relaxed); }
  void Reset(int64_t budget) {
    write_budget.store(budget, std::memory_order_relaxed);
    crashed.store(false, std::memory_order_relaxed);
    writes_seen.store(0, std::memory_order_relaxed);
  }
};

/// FileSystem wrapper implementing FaultPlan. Reads are passed through
/// untouched (surviving data stays readable after the "crash").
class FaultInjectingFileSystem : public FileSystem {
 public:
  FaultInjectingFileSystem(FileSystem* base, FaultPlan* plan)
      : base_(base), plan_(plan) {}

  Result<std::unique_ptr<File>> Open(const std::string& path,
                                     bool truncate) override;
  bool Exists(const std::string& path) const override {
    return base_->Exists(path);
  }
  Status Remove(const std::string& path) override { return base_->Remove(path); }
  /// Counted against the write budget when either path matches the filter.
  /// Atomic under the fault model: it either happens or fails whole — a
  /// crashing rename leaves the destination untouched (tear_bytes does not
  /// apply; there is no partial rename on a POSIX filesystem).
  Status Rename(const std::string& from, const std::string& to) override;
  Status CreateDir(const std::string& path) override {
    return base_->CreateDir(path);
  }
  Result<std::vector<std::string>> ListDir(
      const std::string& path) const override {
    return base_->ListDir(path);
  }

 private:
  FileSystem* base_;
  FaultPlan* plan_;
};

}  // namespace storage
}  // namespace neurodb

#endif  // NEURODB_STORAGE_DISK_FILE_H_
