// NeuroDB — WriteAheadLog: the durability log for ApplyUpdates batches.
//
// The log is payload-agnostic: the storage layer never depends on engine
// types, so a record is (epoch, opaque bytes, CRC) and the engine owns the
// UpdateRequest codec (engine/durability.h). Each Append is one write of
// the fully assembled record followed by one fsync — the record is durable
// before Append returns, which is what lets QueryEngine acknowledge an
// ApplyUpdates batch before mutating any backend.
//
// Replay scans records from the front and stops at the first record whose
// header is incomplete, whose length is implausible or whose CRC fails —
// the torn tail a crash mid-Append leaves behind. The caller then drops
// the tail with TruncateTail; a CRC failure is never fatal to recovery.

#ifndef NEURODB_STORAGE_DISK_WAL_H_
#define NEURODB_STORAGE_DISK_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/disk/file.h"
#include "storage/epoch.h"
#include "storage/page_store.h"

namespace neurodb {
namespace storage {

class WriteAheadLog {
 public:
  struct Record {
    Epoch epoch = 0;
    std::vector<uint8_t> payload;
    /// Byte offset of the record header in the log file.
    uint64_t offset = 0;
  };

  struct ReplayStats {
    size_t records = 0;
    /// End of the last intact record (= the offset TruncateTail cuts at).
    uint64_t end_offset = 0;
    /// True when trailing bytes after the last intact record were dropped.
    bool torn_tail = false;
    uint64_t dropped_bytes = 0;
  };

  /// Open `path`, creating an empty log (magic + version header) if it does
  /// not exist. A file shorter than the 16-byte header is treated as a
  /// crash during creation and rewritten.
  static Result<std::unique_ptr<WriteAheadLog>> OpenOrCreate(
      FileSystem* fs, const std::string& path);

  /// Durably append one record: a single write of the assembled record,
  /// then fsync. On return the record survives any crash.
  Status Append(Epoch epoch, const std::vector<uint8_t>& payload);

  /// Scan every intact record in order, invoking `fn` for each; stops (OK)
  /// at the first torn record. A non-OK status from `fn` aborts the scan
  /// and is returned. Leaves the append cursor at the end of the last
  /// intact record.
  Status Replay(const std::function<Status(const Record&)>& fn,
                ReplayStats* stats);

  /// Physically drop everything past `end_offset` (the torn tail).
  Status TruncateTail(uint64_t end_offset);

  /// Empty the log back to its header (checkpoint) and fsync.
  Status Reset();

  /// Byte size of the intact log (header + records).
  uint64_t end_offset() const { return end_; }

  IoStats io() const {
    return IoStats{bytes_read_, bytes_written_, fsyncs_};
  }

 private:
  WriteAheadLog(std::unique_ptr<File> file, std::string path)
      : file_(std::move(file)), path_(std::move(path)) {}

  std::unique_ptr<File> file_;
  std::string path_;
  uint64_t end_ = 0;

  uint64_t bytes_read_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t fsyncs_ = 0;
};

}  // namespace storage
}  // namespace neurodb

#endif  // NEURODB_STORAGE_DISK_WAL_H_
