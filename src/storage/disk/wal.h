// NeuroDB — WriteAheadLog: the durability log for ApplyUpdates batches.
//
// The log is payload-agnostic: the storage layer never depends on engine
// types, so a record is (epoch, opaque bytes, CRC) and the engine owns the
// UpdateRequest codec (engine/durability.h). Appends are durable-by-default:
// one write of the fully assembled record(s) followed by one fsync — the
// records are durable before the call returns, which is what lets
// QueryEngine acknowledge an ApplyUpdates batch before mutating any
// backend. Group commit rides on AppendBatch: N records become ONE write
// and ONE fsync without changing the on-disk record layout, so a replayer
// cannot tell a coalesced group from N solo appends. `sync=false` defers
// durability entirely (bulk-load mode; the caller's checkpoint is then the
// only durability point).
//
// Replay scans records from the front and stops at the first record whose
// header is incomplete, whose length is implausible or whose CRC fails —
// the torn tail a crash mid-Append leaves behind. The caller then drops
// the tail with TruncateTail; a CRC failure is never fatal to recovery.
//
// All mutation (Append/AppendBatch/TruncateTail/Reset/CutPrefix) is
// single-threaded by contract — the engine's commit lock serializes it.
// io() is safe from any thread (the counters are relaxed atomics).

#ifndef NEURODB_STORAGE_DISK_WAL_H_
#define NEURODB_STORAGE_DISK_WAL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/disk/file.h"
#include "storage/epoch.h"
#include "storage/page_store.h"

namespace neurodb {
namespace storage {

class WriteAheadLog {
 public:
  struct Record {
    Epoch epoch = 0;
    std::vector<uint8_t> payload;
    /// Byte offset of the record header in the log file.
    uint64_t offset = 0;
  };

  /// One not-yet-appended record: what a group-commit leader collects from
  /// its followers before the single coalesced AppendBatch.
  struct PendingRecord {
    Epoch epoch = 0;
    std::vector<uint8_t> payload;
  };

  struct ReplayStats {
    size_t records = 0;
    /// End of the last intact record (= the offset TruncateTail cuts at).
    uint64_t end_offset = 0;
    /// True when trailing bytes after the last intact record were dropped.
    bool torn_tail = false;
    uint64_t dropped_bytes = 0;
  };

  /// Open `path`, creating an empty log (magic + version header) if it does
  /// not exist. A file shorter than the 16-byte header is treated as a
  /// crash during creation and rewritten.
  static Result<std::unique_ptr<WriteAheadLog>> OpenOrCreate(
      FileSystem* fs, const std::string& path);

  /// The side file CutPrefix builds the truncated log in before atomically
  /// renaming it over `path`. An orphan at this name is a crashed cut —
  /// harmless (the rename never happened, `path` is intact) but worth
  /// removing on open.
  static std::string CutSidePath(const std::string& path) {
    return path + ".cut";
  }

  /// Append one record: a single write of the assembled record, then —
  /// when `sync` — one fsync. With sync, the record survives any crash
  /// once Append returns; without, durability waits for the next synced
  /// append or checkpoint.
  Status Append(Epoch epoch, const std::vector<uint8_t>& payload,
                bool sync = true);

  /// Group commit: append every record in one WriteAt, then (when `sync`)
  /// ONE fsync for the whole group. All-or-nothing at the API level: on
  /// error the append cursor does not advance and no record is
  /// acknowledged (a torn physical tail is dropped by the next Replay).
  Status AppendBatch(std::span<const PendingRecord> records, bool sync);

  /// Scan every intact record in order, invoking `fn` for each; stops (OK)
  /// at the first torn record. A non-OK status from `fn` aborts the scan
  /// and is returned. Leaves the append cursor at the end of the last
  /// intact record.
  Status Replay(const std::function<Status(const Record&)>& fn,
                ReplayStats* stats);

  /// Physically drop everything past `end_offset` (the torn tail).
  Status TruncateTail(uint64_t end_offset);

  /// Empty the log back to its header (checkpoint) and fsync.
  Status Reset();

  /// Drop every record before byte offset `from` (exclusive of the file
  /// header), keeping the suffix — the checkpoint-commit primitive when
  /// records landed *during* the checkpoint stream. Crash-safe via a side
  /// file + atomic rename: the suffix is written (with a fresh header) to
  /// CutSidePath(path) and fsync'd, then renamed over the log. A crash
  /// before the rename leaves the old log intact; after it, the new one —
  /// never a torn mix. `from` at or past end_offset() degenerates to
  /// Reset(); `from` inside a record is a caller bug and is rejected by
  /// the next Replay (CRC), so callers pass only record boundaries.
  Status CutPrefix(uint64_t from);

  /// Byte size of the intact log (header + records).
  uint64_t end_offset() const { return end_; }

  IoStats io() const {
    return IoStats{bytes_read_.load(std::memory_order_relaxed),
                   bytes_written_.load(std::memory_order_relaxed),
                   fsyncs_.load(std::memory_order_relaxed)};
  }

 private:
  WriteAheadLog(FileSystem* fs, std::unique_ptr<File> file, std::string path)
      : fs_(fs), file_(std::move(file)), path_(std::move(path)) {}

  FileSystem* fs_;
  std::unique_ptr<File> file_;
  std::string path_;
  uint64_t end_ = 0;

  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> fsyncs_{0};
};

}  // namespace storage
}  // namespace neurodb

#endif  // NEURODB_STORAGE_DISK_WAL_H_
