#include "storage/disk/disk_page_store.h"

#include "storage/disk/format.h"

namespace neurodb {
namespace storage {

Result<std::unique_ptr<DiskPageStore>> DiskPageStore::Create(
    const std::string& path, const DiskStoreOptions& options) {
  FileSystem* fs = options.fs ? options.fs : DefaultFileSystem();
  auto file = PageFile::Create(fs, path, options.block_bytes);
  NEURODB_RETURN_NOT_OK(file.status());
  return std::unique_ptr<DiskPageStore>(
      new DiskPageStore(std::move(*file), 0));
}

Result<std::unique_ptr<DiskPageStore>> DiskPageStore::Open(
    const std::string& path, const DiskStoreOptions& options) {
  FileSystem* fs = options.fs ? options.fs : DefaultFileSystem();
  auto file = PageFile::Open(fs, path);
  NEURODB_RETURN_NOT_OK(file.status());
  // Page ids are allocated densely, so the page count is one past the
  // largest directory key (allocated-but-unwritten tail pages are lost on
  // reopen, which is fine: they hold no data).
  size_t num_pages = 0;
  if (!(*file)->directory().empty()) {
    num_pages = static_cast<size_t>((*file)->directory().rbegin()->first) + 1;
  }
  Epoch persisted = (*file)->epoch();
  std::unique_ptr<DiskPageStore> store(
      new DiskPageStore(std::move(*file), num_pages));
  store->AdvanceEpochTo(persisted);
  return store;
}

PageId DiskPageStore::Allocate() {
  return static_cast<PageId>(num_pages_++);
}

Status DiskPageStore::Write(PageId id,
                            std::vector<geom::SpatialElement> elements) {
  if (id >= num_pages_) {
    return Status::OutOfRange("DiskPageStore::Write: page id " +
                              std::to_string(id) + " >= " +
                              std::to_string(num_pages_));
  }
  NEURODB_RETURN_NOT_OK(file_->WritePage(id, EncodePageImage(id, elements)));
  CountWrite();
  // Invalidate any cached frame: the next Read pays a genuine device read.
  std::lock_guard<std::mutex> lock(mu_);
  frames_.erase(id);
  return Status::OK();
}

Result<const Page*> DiskPageStore::Read(PageId id) const {
  if (id >= num_pages_) {
    return Status::OutOfRange("DiskPageStore::Read: page id " +
                              std::to_string(id) + " >= " +
                              std::to_string(num_pages_));
  }
  CountRead();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(id);
  if (it != frames_.end()) return const_cast<const Page*>(it->second.get());
  auto frame = std::make_unique<Page>();
  if (file_->Contains(id)) {
    auto image = file_->ReadPage(id);
    NEURODB_RETURN_NOT_OK(image.status());
    auto page = DecodePageImage(image->data(), image->size(), id);
    NEURODB_RETURN_NOT_OK(page.status());
    *frame = std::move(*page);
  } else {
    // Allocated but never written: an empty page, like the in-memory store.
    frame->id = id;
  }
  const Page* out = frame.get();
  frames_[id] = std::move(frame);
  return out;
}

const Page* DiskPageStore::Peek(PageId id) const {
  if (id >= num_pages_) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = frames_.find(id);
  if (it != frames_.end()) return it->second.get();
  // Metadata-path access materializes the frame without ticking the raw
  // read counter (the semantics of Peek); the device bytes still count.
  auto frame = std::make_unique<Page>();
  if (file_->Contains(id)) {
    auto image = file_->ReadPage(id);
    if (!image.ok()) return nullptr;
    auto page = DecodePageImage(image->data(), image->size(), id);
    if (!page.ok()) return nullptr;
    *frame = std::move(*page);
  } else {
    frame->id = id;
  }
  const Page* out = frame.get();
  frames_[id] = std::move(frame);
  return out;
}

void DiskPageStore::Reset() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    frames_.clear();
  }
  file_->Clear();
  num_pages_ = 0;
  BumpEpoch();
}

}  // namespace storage
}  // namespace neurodb
