// NeuroDB — PageFile: a single-file block store mapping PageId → block run.
//
// Layout (see docs/FILE_FORMAT.md):
//   block 0        48-byte header: magic, version, block size, epoch,
//                  committed file length in blocks, page-directory run,
//                  page count, CRC.
//   blocks 1..N    page images and the serialized page directory, placed
//                  by a free-block-list allocator.
//
// All mutation is copy-on-write: WritePage never overwrites blocks the
// committed directory references — it allocates a fresh run (from the free
// list, else by extending the file) and stages the old run for release.
// Sync() publishes the staged state in two fsync'd steps: (1) write the new
// directory into fresh blocks, fsync; (2) write the header pointing at it,
// fsync. A crash anywhere in between leaves the previous header/directory
// pair fully intact, so the file always opens to its last Sync.
//
// Writers are single-threaded (the engine serializes mutation); ReadPage is
// safe to call concurrently with other ReadPage calls.

#ifndef NEURODB_STORAGE_DISK_PAGE_FILE_H_
#define NEURODB_STORAGE_DISK_PAGE_FILE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/disk/file.h"
#include "storage/epoch.h"
#include "storage/page.h"
#include "storage/page_store.h"

namespace neurodb {
namespace storage {

class PageFile {
 public:
  /// A contiguous run of blocks holding one page image (or the directory).
  struct Run {
    uint32_t first_block = 0;
    uint32_t num_blocks = 0;
    uint32_t payload_bytes = 0;
  };

  /// Create (or truncate) `path` as an empty page file and commit an
  /// initial header.
  static Result<std::unique_ptr<PageFile>> Create(FileSystem* fs,
                                                  const std::string& path,
                                                  uint32_t block_bytes);

  /// Open an existing page file: validates magic, version and header CRC,
  /// then loads the page directory and free list of the last Sync.
  static Result<std::unique_ptr<PageFile>> Open(FileSystem* fs,
                                                const std::string& path);

  /// Stage `image` as the contents of page `id` (copy-on-write; the old run
  /// is released at the next Sync).
  Status WritePage(PageId id, const std::vector<uint8_t>& image);

  /// Read the staged (or committed) image of page `id`.
  Result<std::vector<uint8_t>> ReadPage(PageId id) const;

  /// Stage removal of page `id`.
  Status FreePage(PageId id);

  /// Stage removal of every page (checkpoint rewrite, Reset).
  void Clear();

  /// While on, AllocateRun skips the free-list first-fit and extends the
  /// file tail instead, so a checkpoint stream's pages land in one
  /// physically contiguous ascending span — which is what lets the next
  /// recovery's ScanPages coalesce them into a few large reads. The blocks
  /// the free list holds are not lost: EndSequentialAllocation re-enables
  /// reuse, and a following Sync persists the (unchanged) free list.
  void BeginSequentialAllocation() { sequential_alloc_ = true; }
  void EndSequentialAllocation() { sequential_alloc_ = false; }

  struct ScanStats {
    uint64_t pages = 0;
    /// Device read calls issued — the coalescing win recovery measures.
    uint64_t read_calls = 0;
    /// Largest single read buffer (bounds the scan's peak residency).
    uint64_t max_window_bytes = 0;
  };

  /// Visit every page in ascending PageId order without materializing more
  /// than one read window: physically adjacent runs are coalesced into a
  /// single ReadAt of at most max(readahead_bytes, one run), then sliced
  /// per page for `fn(id, data, size)`. A non-OK status from `fn` aborts
  /// the scan. Readahead pays off exactly when the pages were written
  /// under BeginSequentialAllocation (checkpoint streams); a fragmented
  /// directory degrades to one read per run, never worse than ReadPage.
  Status ScanPages(
      const std::function<Status(PageId, const uint8_t*, size_t)>& fn,
      uint64_t readahead_bytes, ScanStats* stats = nullptr) const;

  /// Durably commit the staged directory + free list and stamp `epoch` into
  /// the header. Blocks staged for release become reusable afterwards.
  Status Sync(Epoch epoch);

  bool Contains(PageId id) const { return dir_.find(id) != dir_.end(); }
  size_t NumPages() const { return dir_.size(); }
  /// Sum of page-image payload bytes across the directory.
  uint64_t PayloadBytes() const;

  Epoch epoch() const { return epoch_; }
  uint32_t block_bytes() const { return block_bytes_; }
  uint64_t file_blocks() const { return file_blocks_; }

  /// Staged directory / free list views (ndb_inspect, tests).
  const std::map<PageId, Run>& directory() const { return dir_; }
  const std::vector<Run>& free_runs() const { return free_; }

  IoStats io() const {
    return IoStats{bytes_read_.load(std::memory_order_relaxed),
                   bytes_written_.load(std::memory_order_relaxed),
                   fsyncs_.load(std::memory_order_relaxed)};
  }

  /// Device read/write *calls* (IoStats counts bytes): the syscall-count
  /// view cold-start cares about — readahead cuts read_calls, not bytes.
  uint64_t read_calls() const {
    return read_calls_.load(std::memory_order_relaxed);
  }
  uint64_t write_calls() const {
    return write_calls_.load(std::memory_order_relaxed);
  }

 private:
  PageFile(std::unique_ptr<File> file, std::string path, uint32_t block_bytes)
      : file_(std::move(file)),
        path_(std::move(path)),
        block_bytes_(block_bytes) {}

  uint32_t BlocksFor(size_t bytes) const {
    return static_cast<uint32_t>((bytes + block_bytes_ - 1) / block_bytes_);
  }

  /// First-fit from the free list, else extend the file.
  Run AllocateRun(uint32_t num_blocks, uint32_t payload_bytes);

  Status WriteHeader(Epoch epoch, const Run& dir_run);
  Status SyncFile();
  Status WriteAt(uint64_t offset, const void* data, size_t n);

  std::unique_ptr<File> file_;
  std::string path_;
  uint32_t block_bytes_ = 0;

  // Staged state (equals committed state right after Create/Open/Sync).
  std::map<PageId, Run> dir_;
  std::vector<Run> free_;          // reusable now (free in committed state too)
  std::vector<Run> pending_free_;  // reusable only after the next Sync
  Run committed_dir_run_;          // zero num_blocks when none
  uint64_t file_blocks_ = 1;       // header block + everything allocated
  Epoch epoch_ = 0;
  bool sequential_alloc_ = false;

  mutable std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> fsyncs_{0};
  mutable std::atomic<uint64_t> read_calls_{0};
  std::atomic<uint64_t> write_calls_{0};
};

}  // namespace storage
}  // namespace neurodb

#endif  // NEURODB_STORAGE_DISK_PAGE_FILE_H_
