// NeuroDB — on-disk format primitives shared by PageFile, WriteAheadLog
// and tools/ndb_inspect: little-endian fixed-width codecs, the element
// codec (matching the modeled kElementBytes / kPageHeaderBytes layout of
// storage/page.h exactly), and CRC-32 (IEEE 802.3 polynomial, the zlib
// one). See docs/FILE_FORMAT.md for the full layout specification.

#ifndef NEURODB_STORAGE_DISK_FORMAT_H_
#define NEURODB_STORAGE_DISK_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "geom/element.h"
#include "storage/page.h"

namespace neurodb {
namespace storage {

// "NDBPGF1\0" read little-endian — page-file magic.
inline constexpr uint64_t kPageFileMagic = 0x00314647'50424E44ULL;
// "NDBWAL1\0" read little-endian — write-ahead-log magic.
inline constexpr uint64_t kWalMagic = 0x00314C41'57424E44ULL;
inline constexpr uint32_t kFormatVersion = 1;
// Fixed byte sizes.
inline constexpr size_t kPageFileHeaderBytes = 48;
inline constexpr size_t kWalHeaderBytes = 16;
inline constexpr size_t kWalRecordHeaderBytes = 16;
// On-disk page image header (mirrors kPageHeaderBytes = 16).
inline constexpr uint32_t kPageImageMagic = 0x4750444EU;  // "NDPG"

inline void EncodeU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

inline void EncodeU64(std::vector<uint8_t>* out, uint64_t v) {
  EncodeU32(out, static_cast<uint32_t>(v));
  EncodeU32(out, static_cast<uint32_t>(v >> 32));
}

inline void EncodeF32(std::vector<uint8_t>* out, float f) {
  uint32_t v;
  std::memcpy(&v, &f, sizeof(v));
  EncodeU32(out, v);
}

inline void PutU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

inline void PutU64(uint8_t* p, uint64_t v) {
  PutU32(p, static_cast<uint32_t>(v));
  PutU32(p + 4, static_cast<uint32_t>(v >> 32));
}

inline uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

inline uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

inline float GetF32(const uint8_t* p) {
  uint32_t v = GetU32(p);
  float f;
  std::memcpy(&f, &v, sizeof(f));
  return f;
}

/// CRC-32 (reflected, polynomial 0xEDB88320) over `n` bytes.
uint32_t Crc32(const uint8_t* data, size_t n, uint32_t seed = 0);

/// Serialize one element: u64 id + 6 × f32 bounds = kElementBytes (32).
inline void EncodeElement(std::vector<uint8_t>* out,
                          const geom::SpatialElement& e) {
  EncodeU64(out, e.id);
  EncodeF32(out, e.bounds.min.x);
  EncodeF32(out, e.bounds.min.y);
  EncodeF32(out, e.bounds.min.z);
  EncodeF32(out, e.bounds.max.x);
  EncodeF32(out, e.bounds.max.y);
  EncodeF32(out, e.bounds.max.z);
}

inline geom::SpatialElement DecodeElement(const uint8_t* p) {
  geom::SpatialElement e;
  e.id = GetU64(p);
  e.bounds.min.x = GetF32(p + 8);
  e.bounds.min.y = GetF32(p + 12);
  e.bounds.min.z = GetF32(p + 16);
  e.bounds.max.x = GetF32(p + 20);
  e.bounds.max.y = GetF32(p + 24);
  e.bounds.max.z = GetF32(p + 28);
  return e;
}

/// Serialize a page image: 16-byte header (magic, count, page id) followed
/// by `count` encoded elements — byte-for-byte the footprint Page::SizeBytes
/// models.
std::vector<uint8_t> EncodePageImage(PageId id,
                                     const std::vector<geom::SpatialElement>&
                                         elements);

/// Parse a page image produced by EncodePageImage. Validates the magic,
/// the id against `expected_id` and the length against the element count.
Result<Page> DecodePageImage(const uint8_t* data, size_t n,
                             PageId expected_id);

}  // namespace storage
}  // namespace neurodb

#endif  // NEURODB_STORAGE_DISK_FORMAT_H_
