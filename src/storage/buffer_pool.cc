#include "storage/buffer_pool.h"

namespace neurodb {
namespace storage {

BufferPool::BufferPool(PageStore* store, size_t capacity_pages, SimClock* clock,
                       DiskCostModel cost)
    : store_(store),
      capacity_(capacity_pages == 0 ? 1 : capacity_pages),
      clock_(clock),
      cost_(cost),
      store_epoch_(store != nullptr ? store->epoch() : 0) {}

void BufferPool::RefreshIfStale() {
  // Lazy pool-level epoch check: a store Reset (compaction rebuilt the
  // page layout) bumps the store epoch, so every cached page is from a
  // dead layout. Dropping them here lets long-lived consumers — sessions
  // opened before the Compact — keep using the same pool and simply
  // re-fetch, instead of failing fast.
  if (store_ == nullptr) return;
  const Epoch current = store_->epoch();
  if (current == store_epoch_) return;
  EvictAll();
  stats_.Bump("pool.epoch_refreshes");
  store_epoch_ = current;
}

void BufferPool::Touch(PageId id) {
  auto it = map_.find(id);
  lru_.erase(it->second);
  lru_.push_front(id);
  it->second = lru_.begin();
}

void BufferPool::EvictIfFull() {
  while (lru_.size() >= capacity_) {
    PageId victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
    if (prefetched_pending_.erase(victim) > 0) {
      // Prefetched but evicted before ever being used.
      stats_.Bump("pool.prefetch_evicted_unused");
    }
    stats_.Bump("pool.evictions");
  }
}

void BufferPool::Insert(PageId id) {
  EvictIfFull();
  lru_.push_front(id);
  map_[id] = lru_.begin();
}

Result<const Page*> BufferPool::Fetch(PageId id) {
  RefreshIfStale();
  auto it = map_.find(id);
  if (it != map_.end()) {
    Touch(id);
    stats_.Bump("pool.hits");
    if (prefetched_pending_.erase(id) > 0) {
      stats_.Bump("pool.prefetch_used");
    }
    if (clock_ != nullptr) clock_->Advance(cost_.page_hit_micros);
    return store_->Read(id);
  }
  // Miss: demand read from the store.
  auto page = store_->Read(id);
  if (!page.ok()) return page.status();
  Insert(id);
  stats_.Bump("pool.misses");
  if (clock_ != nullptr) clock_->Advance(cost_.page_read_micros);
  return page;
}

const Page* BufferPool::Peek(PageId id) const {
  // Peek must not hand out a page cached from a pre-Reset layout.
  const_cast<BufferPool*>(this)->RefreshIfStale();
  if (map_.find(id) == map_.end()) return nullptr;
  return store_->Peek(id);
}

Status BufferPool::Prefetch(PageId id) {
  RefreshIfStale();
  if (map_.find(id) != map_.end()) {
    stats_.Bump("pool.prefetch_redundant");
    return Status::OK();
  }
  auto page = store_->Read(id);
  if (!page.ok()) return page.status();
  Insert(id);
  prefetched_pending_.insert(id);
  stats_.Bump("pool.prefetch_issued");
  return Status::OK();
}

void BufferPool::EvictAll() {
  lru_.clear();
  map_.clear();
  prefetched_pending_.clear();
}

}  // namespace storage
}  // namespace neurodb
