// NeuroDB — PageStore: the simulated disk.
//
// Holds all pages of a dataset and counts raw I/O. Access normally goes
// through a BufferPool (buffer_pool.h) which adds caching, prefetch
// tracking and the time model.

#ifndef NEURODB_STORAGE_PAGE_STORE_H_
#define NEURODB_STORAGE_PAGE_STORE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "common/status.h"
#include "storage/page.h"

namespace neurodb {
namespace storage {

/// An append-oriented store of pages ("the disk").
class PageStore {
 public:
  PageStore() = default;

  PageStore(const PageStore&) = delete;
  PageStore& operator=(const PageStore&) = delete;
  PageStore(PageStore&&) = default;
  PageStore& operator=(PageStore&&) = default;

  /// Allocate a new empty page and return its id.
  PageId Allocate();

  /// Replace the contents of page `id`. The page's `id` field is set.
  Status Write(PageId id, std::vector<geom::SpatialElement> elements);

  /// Read page `id`. The returned pointer is stable until the store is
  /// destroyed. Counts one raw read in stats ("store.reads").
  Result<const Page*> Read(PageId id) const;

  size_t NumPages() const { return pages_.size(); }

  /// Total serialized bytes across all pages.
  size_t TotalBytes() const;

  const Stats& stats() const { return stats_; }
  Stats& stats() { return stats_; }

 private:
  std::vector<Page> pages_;
  mutable Stats stats_;
};

}  // namespace storage
}  // namespace neurodb

#endif  // NEURODB_STORAGE_PAGE_STORE_H_
