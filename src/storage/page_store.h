// NeuroDB — PageStore: the page-store seam.
//
// The base class is the in-memory implementation ("the simulated disk"):
// it holds all pages of a dataset and counts raw I/O. storage/disk/
// provides DiskPageStore, a subclass backed by a real page file with
// block-level reads, writes and fsyncs. Access normally goes through a
// BufferPool (buffer_pool.h) which adds caching, prefetch tracking and the
// time model; the pool only sees the virtual interface, so every backend
// works against either implementation. The raw read/write counters are
// atomic: one store is read concurrently by the per-lane pools of a
// parallel ExecuteBatch and by parallel shard queries, and the counters
// must stay exact (and TSan-clean) under that load.

#ifndef NEURODB_STORAGE_PAGE_STORE_H_
#define NEURODB_STORAGE_PAGE_STORE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/epoch.h"
#include "storage/page.h"

namespace neurodb {
namespace storage {

/// Physical I/O performed by a store. The in-memory PageStore never touches
/// a device and reports zeros; DiskPageStore counts real pread/pwrite bytes
/// and fsync calls.
struct IoStats {
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t fsyncs = 0;

  IoStats& operator+=(const IoStats& o) {
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    fsyncs += o.fsyncs;
    return *this;
  }
  IoStats operator-(const IoStats& o) const {
    return IoStats{bytes_read - o.bytes_read, bytes_written - o.bytes_written,
                   fsyncs - o.fsyncs};
  }
};

/// An append-oriented store of pages ("the disk"). Concrete in-memory
/// implementation and the virtual seam for disk-backed subclasses.
class PageStore {
 public:
  PageStore() = default;
  virtual ~PageStore() = default;

  PageStore(const PageStore&) = delete;
  PageStore& operator=(const PageStore&) = delete;
  PageStore(PageStore&& other) noexcept
      : pages_(std::move(other.pages_)),
        reads_(other.reads_.load(std::memory_order_relaxed)),
        writes_(other.writes_.load(std::memory_order_relaxed)),
        epoch_(other.epoch_.load(std::memory_order_relaxed)) {}
  PageStore& operator=(PageStore&& other) noexcept {
    if (this == &other) return *this;
    pages_ = std::move(other.pages_);
    reads_.store(other.reads_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    writes_.store(other.writes_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    // The epoch never regresses: pools (and recovery, which reopens stores)
    // rely on "epoch moved" <=> "layout may have changed", so assigning a
    // younger store over an older one keeps the older epoch.
    AdvanceEpochTo(other.epoch_.load(std::memory_order_relaxed));
    return *this;
  }

  /// Allocate a new empty page and return its id.
  virtual PageId Allocate();

  /// Replace the contents of page `id`. The page's `id` field is set.
  virtual Status Write(PageId id, std::vector<geom::SpatialElement> elements);

  /// Read page `id`. The returned pointer is stable until the store is
  /// destroyed or Reset. Counts one raw read. Thread-safe against other
  /// Reads.
  virtual Result<const Page*> Read(PageId id) const;

  /// The page without counting a raw read (metadata-path access: the page
  /// was already paid for by the Read/Prefetch that cached it). Returns
  /// nullptr for an unknown id.
  virtual const Page* Peek(PageId id) const {
    return id < pages_.size() ? &pages_[id] : nullptr;
  }

  virtual size_t NumPages() const { return pages_.size(); }

  /// Total serialized bytes across all pages.
  virtual size_t TotalBytes() const;

  /// Physical device I/O (zeros for the in-memory store).
  virtual IoStats io() const { return IoStats{}; }

  /// Persist any staged metadata (page directory, header) to the device.
  /// No-op for the in-memory store.
  virtual Status Flush() { return Status::OK(); }

  /// Raw page reads served since construction (demand + prefetch).
  uint64_t NumReads() const { return reads_.load(std::memory_order_relaxed); }
  /// Pages written since construction.
  uint64_t NumWrites() const { return writes_.load(std::memory_order_relaxed); }

  /// Version of the physical page layout. Bumped by Reset (compaction) and
  /// BumpEpoch; a BufferPool caching pages of this store is stale — and must
  /// be evicted — whenever the store's epoch moved past the one it cached at.
  /// Monotone across Reset, move-assignment and (for disk stores) reopen.
  Epoch epoch() const { return epoch_.load(std::memory_order_relaxed); }
  void BumpEpoch() { epoch_.fetch_add(1, std::memory_order_relaxed); }

  /// Advance the epoch to at least `e`; never moves it backwards. Used when
  /// a disk store reopens a file whose header carries a persisted epoch.
  void AdvanceEpochTo(Epoch e) {
    Epoch cur = epoch_.load(std::memory_order_relaxed);
    while (cur < e &&
           !epoch_.compare_exchange_weak(cur, e, std::memory_order_relaxed)) {
    }
  }

  /// Drop every page (compaction rebuilds the layout from scratch) and bump
  /// the epoch — the epoch always moves forward, never back to a value a
  /// pool might have cached at. Read/write counters keep accumulating across
  /// Resets. Any BufferPool over this store must be evicted before its next
  /// access — cached Page pointers into the old layout are invalid after a
  /// Reset.
  virtual void Reset() {
    pages_.clear();
    BumpEpoch();
  }

 protected:
  // Subclass hooks into the shared raw-I/O counters.
  void CountRead() const { reads_.fetch_add(1, std::memory_order_relaxed); }
  void CountWrite() { writes_.fetch_add(1, std::memory_order_relaxed); }

 private:
  std::vector<Page> pages_;
  mutable std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<Epoch> epoch_{0};
};

}  // namespace storage
}  // namespace neurodb

#endif  // NEURODB_STORAGE_PAGE_STORE_H_
