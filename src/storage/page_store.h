// NeuroDB — PageStore: the simulated disk.
//
// Holds all pages of a dataset and counts raw I/O. Access normally goes
// through a BufferPool (buffer_pool.h) which adds caching, prefetch
// tracking and the time model. The raw read/write counters are atomic: one
// store is read concurrently by the per-lane pools of a parallel
// ExecuteBatch and by parallel shard queries, and the counters must stay
// exact (and TSan-clean) under that load.

#ifndef NEURODB_STORAGE_PAGE_STORE_H_
#define NEURODB_STORAGE_PAGE_STORE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/epoch.h"
#include "storage/page.h"

namespace neurodb {
namespace storage {

/// An append-oriented store of pages ("the disk").
class PageStore {
 public:
  PageStore() = default;

  PageStore(const PageStore&) = delete;
  PageStore& operator=(const PageStore&) = delete;
  PageStore(PageStore&& other) noexcept
      : pages_(std::move(other.pages_)),
        reads_(other.reads_.load(std::memory_order_relaxed)),
        writes_(other.writes_.load(std::memory_order_relaxed)),
        epoch_(other.epoch_.load(std::memory_order_relaxed)) {}
  PageStore& operator=(PageStore&& other) noexcept {
    pages_ = std::move(other.pages_);
    reads_.store(other.reads_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    writes_.store(other.writes_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    epoch_.store(other.epoch_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  /// Allocate a new empty page and return its id.
  PageId Allocate();

  /// Replace the contents of page `id`. The page's `id` field is set.
  Status Write(PageId id, std::vector<geom::SpatialElement> elements);

  /// Read page `id`. The returned pointer is stable until the store is
  /// destroyed. Counts one raw read. Thread-safe against other Reads.
  Result<const Page*> Read(PageId id) const;

  /// The page without counting a raw read (metadata-path access: the page
  /// was already paid for by the Read/Prefetch that cached it). Returns
  /// nullptr for an unknown id.
  const Page* Peek(PageId id) const {
    return id < pages_.size() ? &pages_[id] : nullptr;
  }

  size_t NumPages() const { return pages_.size(); }

  /// Total serialized bytes across all pages.
  size_t TotalBytes() const;

  /// Raw page reads served since construction (demand + prefetch).
  uint64_t NumReads() const { return reads_.load(std::memory_order_relaxed); }
  /// Pages written since construction.
  uint64_t NumWrites() const { return writes_.load(std::memory_order_relaxed); }

  /// Version of the physical page layout. Bumped by Reset (compaction) and
  /// BumpEpoch; a BufferPool caching pages of this store is stale — and must
  /// be evicted — whenever the store's epoch moved past the one it cached at.
  Epoch epoch() const { return epoch_.load(std::memory_order_relaxed); }
  void BumpEpoch() { epoch_.fetch_add(1, std::memory_order_relaxed); }

  /// Drop every page (compaction rebuilds the layout from scratch) and bump
  /// the epoch. Read/write counters keep accumulating across Resets. Any
  /// BufferPool over this store must be evicted before its next access —
  /// cached Page pointers into the old layout are invalid after a Reset.
  void Reset() {
    pages_.clear();
    BumpEpoch();
  }

 private:
  std::vector<Page> pages_;
  mutable std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<Epoch> epoch_{0};
};

}  // namespace storage
}  // namespace neurodb

#endif  // NEURODB_STORAGE_PAGE_STORE_H_
