// NeuroDB — observability metrics: thread-safe named counters, gauges and
// log-bucketed latency histograms with lock-free hot-path recording.
//
// The registry is the engine-wide, thread-safe successor to the per-
// experiment `common/Stats` tickers (which stay single-writer by contract —
// see common/stats.h). Layout:
//
//   - `Counter`, `Gauge`, `Histogram` are plain structs of relaxed atomics:
//     recording is a handful of uncontended atomic adds, safe from any
//     thread, no locks, no allocation.
//   - `MetricsRegistry` owns metrics by name. Lookup (`counter()` /
//     `gauge()` / `histogram()`) takes a mutex, so callers resolve metric
//     pointers once (at load/open time) and record through the stable
//     pointers on the hot path.
//   - `Snapshot()` produces a `MetricsSnapshot` — plain data with JSON and
//     Prometheus-style text serialization, and a JSON parser for
//     round-trip tests and external consumers.
//
// Histograms are log-bucketed (4 sub-buckets per power of two, so a
// reconstructed quantile overestimates its sample by < 25%) — recording
// a sample costs one atomic add
// into a fixed 252-slot array; quantiles are reconstructed at snapshot
// time as the upper bound of the bucket containing the requested rank.
//
// The canonical metric names the engine emits are catalogued in
// docs/OBSERVABILITY.md.

#ifndef NEURODB_OBS_METRICS_H_
#define NEURODB_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"

namespace neurodb {
namespace obs {

/// Monotonically increasing counter. Thread-safe; relaxed atomics.
class Counter {
 public:
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Bump() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value. Thread-safe; relaxed atomics.
class Gauge {
 public:
  void Set(uint64_t value) { value_.store(value, std::memory_order_relaxed); }
  void SetMax(uint64_t value) {
    uint64_t cur = value_.load(std::memory_order_relaxed);
    while (value > cur &&
           !value_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Log-bucketed histogram of non-negative integer samples (typically
/// microseconds). Thread-safe; recording is three relaxed atomic adds plus
/// a max CAS. Buckets: values 0..7 get exact buckets; beyond that each
/// power-of-two octave is split into 4 sub-buckets, so any reconstructed
/// quantile overestimates the true sample by less than 25%.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 252;

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t cur = max_.load(std::memory_order_relaxed);
    while (value > cur &&
           !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }

  /// Upper bound of the bucket containing the sample at rank
  /// ceil(q * count), 1-based over the sorted samples. 0 when empty.
  /// Deterministic given the recorded multiset: equals
  /// BucketUpperBound(BucketIndex(exact_quantile)).
  uint64_t ValueAtQuantile(double q) const;

  /// Bucket index for a sample value (monotone non-decreasing in value).
  static size_t BucketIndex(uint64_t value) {
    if (value < 8) return static_cast<size_t>(value);
    const int width = std::bit_width(value);  // >= 4
    const uint64_t sub = (value >> (width - 3)) & 3;
    return 8 + static_cast<size_t>(width - 4) * 4 + static_cast<size_t>(sub);
  }

  /// Largest value mapping to bucket `index`.
  static uint64_t BucketUpperBound(size_t index);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

struct CounterSnapshot {
  std::string name;
  uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  uint64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
};

/// Point-in-time copy of every metric in a registry, name-sorted within
/// each kind. Plain data: safe to serialize, ship and diff.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  const CounterSnapshot* FindCounter(const std::string& name) const;
  const GaugeSnapshot* FindGauge(const std::string& name) const;
  const HistogramSnapshot* FindHistogram(const std::string& name) const;

  /// {"counters":{...},"gauges":{...},"histograms":{"n":{"count":..}}}.
  std::string ToJson() const;

  /// Prometheus text exposition: counters/gauges as single samples,
  /// histograms as summaries (quantile series + _sum + _count). Metric
  /// names are prefixed and sanitized ('.' and other non-identifier
  /// characters become '_').
  std::string ToPrometheus(const std::string& prefix = "neurodb") const;

  /// Parse the ToJson() format back (round-trip: FromJson(ToJson()) is
  /// field-identical). Rejects malformed input with InvalidArgument.
  static Result<MetricsSnapshot> FromJson(const std::string& json);
};

/// Thread-safe home of named metrics. Metrics are created on first lookup
/// and live (at stable addresses) for the registry's lifetime, so hot
/// paths resolve pointers once and record lock-free thereafter.
class MetricsRegistry {
 public:
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Null-tolerant recording helpers: the engine holds null metric pointers
/// when EngineOptions::metrics == kOff, so every hot-path record site
/// inlines to a pointer test and nothing else.
inline void Add(Counter* c, uint64_t delta) {
  if (c != nullptr) c->Add(delta);
}
inline void Bump(Counter* c) {
  if (c != nullptr) c->Add(1);
}
inline void Record(Histogram* h, uint64_t value) {
  if (h != nullptr) h->Record(value);
}
inline void Set(Gauge* g, uint64_t value) {
  if (g != nullptr) g->Set(value);
}

}  // namespace obs
}  // namespace neurodb

#endif  // NEURODB_OBS_METRICS_H_
