// NeuroDB — slow-query log: a bounded ring of the most recent requests
// that exceeded `EngineOptions::slow_query_us`, each retaining its full
// trace span tree for post-hoc inspection.
//
// Thread-safe: batch lanes, sessions and foreground queries all record
// into the engine's one log under a mutex (recording only happens for
// offending queries, so the lock is off the common path).

#ifndef NEURODB_OBS_SLOW_LOG_H_
#define NEURODB_OBS_SLOW_LOG_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace neurodb {
namespace obs {

struct SlowQuery {
  uint64_t seq = 0;  // 1-based admission order, monotone across evictions
  std::string kind;  // "range", "knn", "batch.range", "session.step", ...
  uint64_t duration_us = 0;
  std::shared_ptr<const Trace> trace;  // may be null if tracing was skipped
};

class SlowQueryLog {
 public:
  SlowQueryLog(size_t capacity, uint64_t threshold_us)
      : capacity_(capacity), threshold_us_(threshold_us) {}

  uint64_t threshold_us() const { return threshold_us_; }
  size_t capacity() const { return capacity_; }

  /// Admit the query if it is at or over threshold, evicting the oldest
  /// entry when the ring is full.
  void Record(std::string kind, uint64_t duration_us,
              std::shared_ptr<const Trace> trace);

  /// Oldest-to-newest copy of the retained entries.
  std::vector<SlowQuery> Entries() const;

  /// Queries admitted over the log's lifetime (including evicted ones).
  uint64_t total_recorded() const;

 private:
  mutable std::mutex mu_;
  const size_t capacity_;
  const uint64_t threshold_us_;
  uint64_t seq_ = 0;
  std::deque<SlowQuery> ring_;
};

}  // namespace obs
}  // namespace neurodb

#endif  // NEURODB_OBS_SLOW_LOG_H_
