#include "obs/slow_log.h"

namespace neurodb {
namespace obs {

void SlowQueryLog::Record(std::string kind, uint64_t duration_us,
                          std::shared_ptr<const Trace> trace) {
  if (duration_us < threshold_us_ || capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  SlowQuery entry;
  entry.seq = ++seq_;
  entry.kind = std::move(kind);
  entry.duration_us = duration_us;
  entry.trace = std::move(trace);
  ring_.push_back(std::move(entry));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<SlowQuery> SlowQueryLog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SlowQuery>(ring_.begin(), ring_.end());
}

uint64_t SlowQueryLog::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

}  // namespace obs
}  // namespace neurodb
