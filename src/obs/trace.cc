#include "obs/trace.h"

#include <sstream>

namespace neurodb {
namespace obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += ' ';
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Trace::Trace(std::string root_name)
    : birth_(std::chrono::steady_clock::now()) {
  Span root;
  root.name = std::move(root_name);
  root.parent = -1;
  spans_.push_back(std::move(root));
}

uint64_t Trace::ElapsedNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - birth_)
          .count());
}

int Trace::Begin(const std::string& name, int parent) {
  Span span;
  span.name = name;
  span.parent = parent;
  span.start_ns = ElapsedNs();
  spans_.push_back(std::move(span));
  return static_cast<int>(spans_.size()) - 1;
}

void Trace::End(int span) {
  Span& s = spans_[static_cast<size_t>(span)];
  const uint64_t now = ElapsedNs();
  s.duration_ns = now > s.start_ns ? now - s.start_ns : 1;
}

int Trace::AddCompleted(const std::string& name, int parent, uint64_t start_ns,
                        uint64_t duration_ns) {
  Span span;
  span.name = name;
  span.parent = parent;
  span.start_ns = start_ns;
  span.duration_ns = duration_ns > 0 ? duration_ns : 1;
  spans_.push_back(std::move(span));
  return static_cast<int>(spans_.size()) - 1;
}

void Trace::Tag(int span, std::string key, std::string value) {
  spans_[static_cast<size_t>(span)].tags.emplace_back(std::move(key),
                                                      std::move(value));
}

void Trace::Tag(int span, std::string key, uint64_t value) {
  Tag(span, std::move(key), std::to_string(value));
}

std::string Trace::ToString() const {
  // Children are appended after their parent, so a single indexed pass with
  // depths computed by parent-chasing renders the tree in creation order.
  std::vector<int> depth(spans_.size(), 0);
  std::ostringstream out;
  for (size_t i = 0; i < spans_.size(); ++i) {
    const Span& s = spans_[i];
    if (s.parent >= 0) depth[i] = depth[static_cast<size_t>(s.parent)] + 1;
    for (int d = 0; d < depth[i]; ++d) out << "  ";
    out << s.name << " " << s.duration_ns / 1000 << "us";
    for (const auto& [key, value] : s.tags) out << " " << key << "=" << value;
    out << "\n";
  }
  return out.str();
}

std::string Trace::ToJson() const {
  std::ostringstream out;
  out << "{\"spans\":[";
  for (size_t i = 0; i < spans_.size(); ++i) {
    const Span& s = spans_[i];
    if (i > 0) out << ",";
    out << "{\"name\":\"" << JsonEscape(s.name) << "\",\"start_ns\":"
        << s.start_ns << ",\"duration_ns\":" << s.duration_ns
        << ",\"parent\":" << s.parent << ",\"tags\":{";
    for (size_t t = 0; t < s.tags.size(); ++t) {
      if (t > 0) out << ",";
      out << "\"" << JsonEscape(s.tags[t].first) << "\":\""
          << JsonEscape(s.tags[t].second) << "\"";
    }
    out << "}}";
  }
  out << "]}";
  return out.str();
}

}  // namespace obs
}  // namespace neurodb
