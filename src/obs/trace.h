// NeuroDB — per-request trace: a span tree recording where one query spent
// its time as it crossed engine → backend → buffer pool → disk layers.
//
// A Trace is built by the thread executing one request (it is NOT
// thread-safe — one trace per request, like the report it rides in) and
// then frozen: reports carry `std::shared_ptr<const Trace>` so the same
// tree can live in a report, the slow-query log and a caller's hands
// without copies.
//
// Spans are arena-indexed: Begin() returns an int handle, children are
// always appended after their parent, and `parent == -1` marks the root.
// Timestamps are steady-clock nanoseconds relative to the trace's birth,
// so a rendered tree reads as offsets into the request.

#ifndef NEURODB_OBS_TRACE_H_
#define NEURODB_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace neurodb {
namespace obs {

struct Span {
  std::string name;
  uint64_t start_ns = 0;     // offset from trace birth
  uint64_t duration_ns = 0;  // 0 while the span is still open
  int parent = -1;           // span index; -1 for the root
  std::vector<std::pair<std::string, std::string>> tags;
};

class Trace {
 public:
  /// Opens the root span (index 0) named `root_name`.
  explicit Trace(std::string root_name);

  /// Open a child span under `parent` (default: the root). Returns its
  /// index.
  int Begin(const std::string& name, int parent = 0);

  /// Close an open span; its duration is clamped to >= 1ns so closed
  /// spans always show non-zero time.
  void End(int span);

  /// Append an already-timed span (e.g. a pool or disk sub-window
  /// reconstructed from counter deltas after the fact).
  int AddCompleted(const std::string& name, int parent, uint64_t start_ns,
                   uint64_t duration_ns);

  void Tag(int span, std::string key, std::string value);
  void Tag(int span, std::string key, uint64_t value);

  const std::vector<Span>& spans() const { return spans_; }
  const Span& root() const { return spans_[0]; }

  /// Nanoseconds since the trace was constructed.
  uint64_t ElapsedNs() const;

  /// Indented human-readable tree:
  ///   range 812us
  ///     backend:FLAT 798us pages_read=12 results=40
  ///       pool 798us hits=3 misses=12
  std::string ToString() const;

  /// {"spans":[{"name":..,"start_ns":..,"duration_ns":..,"parent":..,
  ///            "tags":{..}}]}.
  std::string ToJson() const;

 private:
  std::chrono::steady_clock::time_point birth_;
  std::vector<Span> spans_;
};

}  // namespace obs
}  // namespace neurodb

#endif  // NEURODB_OBS_TRACE_H_
