#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>

#include "common/status.h"

namespace neurodb {
namespace obs {

uint64_t Histogram::ValueAtQuantile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) return BucketUpperBound(i);
  }
  // Concurrent recording can leave count() ahead of the bucket sums for an
  // instant; fall back to the recorded maximum.
  return max();
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  if (index < 8) return static_cast<uint64_t>(index);
  const int width = 4 + static_cast<int>((index - 8) / 4);
  const uint64_t sub = (index - 8) % 4;
  const uint64_t quarter = uint64_t{1} << (width - 3);
  const uint64_t lo = (uint64_t{1} << (width - 1)) + sub * quarter;
  return lo + (quarter - 1);
}

namespace {

// --- JSON emission helpers ------------------------------------------------

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string PromName(const std::string& prefix, const std::string& name) {
  std::string out = prefix.empty() ? "" : prefix + "_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out[0])) != 0) {
    out.insert(out.begin(), '_');
  }
  return out;
}

// --- Minimal JSON parser for the MetricsSnapshot::ToJson() shape ----------
//
// Grammar accepted: an object whose members are objects of either
// name -> non-negative integer or name -> flat object of integers.
// Whitespace-tolerant; strings support the escapes JsonEscape emits.

class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Peek(char c) {
    SkipWs();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool ParseString(std::string* out) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return false;
              }
            }
            if (code > 0x7f) return false;  // snapshot names are ASCII
            out->push_back(static_cast<char>(code));
            break;
          }
          default:
            return false;
        }
      } else {
        out->push_back(c);
      }
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool ParseUint(uint64_t* out) {
    SkipWs();
    if (pos_ >= text_.size() ||
        std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
      return false;
    }
    uint64_t v = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      v = v * 10 + static_cast<uint64_t>(text_[pos_] - '0');
      ++pos_;
    }
    *out = v;
    return true;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// Parses {"name": 1, ...} into ordered (name, value) pairs.
bool ParseFlatObject(JsonCursor* cur,
                     std::vector<std::pair<std::string, uint64_t>>* out) {
  if (!cur->Consume('{')) return false;
  out->clear();
  if (cur->Consume('}')) return true;
  do {
    std::string name;
    uint64_t value = 0;
    if (!cur->ParseString(&name)) return false;
    if (!cur->Consume(':')) return false;
    if (!cur->ParseUint(&value)) return false;
    out->emplace_back(std::move(name), value);
  } while (cur->Consume(','));
  return cur->Consume('}');
}

}  // namespace

const CounterSnapshot* MetricsSnapshot::FindCounter(
    const std::string& name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeSnapshot* MetricsSnapshot::FindGauge(const std::string& name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\"counters\":{";
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << JsonEscape(counters[i].name) << "\":" << counters[i].value;
  }
  out << "},\"gauges\":{";
  for (size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << JsonEscape(gauges[i].name) << "\":" << gauges[i].value;
  }
  out << "},\"histograms\":{";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    if (i > 0) out << ",";
    out << "\"" << JsonEscape(h.name) << "\":{\"count\":" << h.count
        << ",\"sum\":" << h.sum << ",\"max\":" << h.max << ",\"p50\":" << h.p50
        << ",\"p95\":" << h.p95 << ",\"p99\":" << h.p99 << "}";
  }
  out << "}}";
  return out.str();
}

std::string MetricsSnapshot::ToPrometheus(const std::string& prefix) const {
  std::ostringstream out;
  for (const auto& c : counters) {
    const std::string name = PromName(prefix, c.name);
    out << "# TYPE " << name << " counter\n" << name << " " << c.value << "\n";
  }
  for (const auto& g : gauges) {
    const std::string name = PromName(prefix, g.name);
    out << "# TYPE " << name << " gauge\n" << name << " " << g.value << "\n";
  }
  for (const auto& h : histograms) {
    const std::string name = PromName(prefix, h.name);
    out << "# TYPE " << name << " summary\n";
    out << name << "{quantile=\"0.5\"} " << h.p50 << "\n";
    out << name << "{quantile=\"0.95\"} " << h.p95 << "\n";
    out << name << "{quantile=\"0.99\"} " << h.p99 << "\n";
    out << name << "_max " << h.max << "\n";
    out << name << "_sum " << h.sum << "\n";
    out << name << "_count " << h.count << "\n";
  }
  return out.str();
}

Result<MetricsSnapshot> MetricsSnapshot::FromJson(const std::string& json) {
  JsonCursor cur(json);
  MetricsSnapshot snap;
  auto malformed = [](const char* what) {
    return Status::InvalidArgument(std::string("MetricsSnapshot JSON: ") +
                                   what);
  };
  if (!cur.Consume('{')) return malformed("expected top-level object");
  bool first = true;
  while (!cur.Peek('}')) {
    if (!first && !cur.Consume(',')) return malformed("expected ','");
    first = false;
    std::string section;
    if (!cur.ParseString(&section)) return malformed("expected section name");
    if (!cur.Consume(':')) return malformed("expected ':'");
    if (section == "counters" || section == "gauges") {
      std::vector<std::pair<std::string, uint64_t>> entries;
      if (!ParseFlatObject(&cur, &entries)) {
        return malformed("bad counter/gauge object");
      }
      for (auto& [name, value] : entries) {
        if (section == "counters") {
          snap.counters.push_back({std::move(name), value});
        } else {
          snap.gauges.push_back({std::move(name), value});
        }
      }
    } else if (section == "histograms") {
      if (!cur.Consume('{')) return malformed("expected histograms object");
      if (!cur.Consume('}')) {
        do {
          HistogramSnapshot h;
          if (!cur.ParseString(&h.name)) return malformed("histogram name");
          if (!cur.Consume(':')) return malformed("expected ':'");
          std::vector<std::pair<std::string, uint64_t>> fields;
          if (!ParseFlatObject(&cur, &fields)) {
            return malformed("bad histogram fields");
          }
          for (const auto& [key, value] : fields) {
            if (key == "count") {
              h.count = value;
            } else if (key == "sum") {
              h.sum = value;
            } else if (key == "max") {
              h.max = value;
            } else if (key == "p50") {
              h.p50 = value;
            } else if (key == "p95") {
              h.p95 = value;
            } else if (key == "p99") {
              h.p99 = value;
            } else {
              return malformed("unknown histogram field");
            }
          }
          snap.histograms.push_back(std::move(h));
        } while (cur.Consume(','));
        if (!cur.Consume('}')) return malformed("unterminated histograms");
      }
    } else {
      return malformed("unknown section");
    }
  }
  if (!cur.Consume('}')) return malformed("unterminated object");
  if (!cur.AtEnd()) return malformed("trailing content");
  return snap;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = h->count();
    hs.sum = h->sum();
    hs.max = h->max();
    hs.p50 = h->ValueAtQuantile(0.50);
    hs.p95 = h->ValueAtQuantile(0.95);
    hs.p99 = h->ValueAtQuantile(0.99);
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

}  // namespace obs
}  // namespace neurodb
