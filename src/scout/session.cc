#include "scout/session.h"

#include "common/sim_clock.h"

namespace neurodb {
namespace scout {

WalkthroughSession::WalkthroughSession(const flat::FlatIndex* index,
                                       storage::PageStore* store,
                                       const neuro::SegmentResolver* resolver,
                                       SessionOptions options)
    : index_(index), store_(store), resolver_(resolver), options_(options) {}

Result<SessionResult> WalkthroughSession::Run(
    const std::vector<geom::Aabb>& queries, PrefetchMethod method) {
  if (index_ == nullptr || store_ == nullptr) {
    return Status::InvalidArgument("WalkthroughSession: null index or store");
  }

  SimClock clock;
  storage::BufferPool pool(store_, options_.pool_pages, &clock, options_.cost);

  PrefetchContext ctx;
  ctx.index = index_;
  ctx.pool = &pool;
  ctx.resolver = resolver_;
  NEURODB_ASSIGN_OR_RETURN(std::unique_ptr<Prefetcher> prefetcher,
                           MakePrefetcher(method, ctx, options_.scout));
  prefetcher->Reset();

  const size_t budget = options_.PrefetchBudget();
  SessionResult out;
  out.steps.reserve(queries.size());

  for (const geom::Aabb& query : queries) {
    StepRecord step;
    uint64_t t0 = clock.NowMicros();
    uint64_t misses0 = pool.stats().Get("pool.misses");
    uint64_t hits0 = pool.stats().Get("pool.hits");

    std::vector<geom::ElementId> result;
    geom::VectorVisitor visitor(&result);
    NEURODB_RETURN_NOT_OK(index_->RangeQuery(query, &pool, visitor));

    step.stall_us = clock.NowMicros() - t0;
    step.pages_missed = pool.stats().Get("pool.misses") - misses0;
    step.pages_hit = pool.stats().Get("pool.hits") - hits0;
    step.results = result.size();

    // Think pause: the prefetcher works while the scientist looks at the
    // data. Loads within the budget finish before the next query.
    step.prefetched = prefetcher->AfterQuery(query, result, budget);
    step.candidates = prefetcher->CandidateCount();
    clock.Advance(options_.think_time_us);

    out.total_stall_us += step.stall_us;
    out.steps.push_back(step);
  }

  out.total_time_us = clock.NowMicros();
  out.pages_missed = pool.stats().Get("pool.misses");
  out.pages_hit = pool.stats().Get("pool.hits");
  out.prefetch_issued = pool.stats().Get("pool.prefetch_issued");
  out.prefetch_used = pool.stats().Get("pool.prefetch_used");
  return out;
}

}  // namespace scout
}  // namespace neurodb
