#include "scout/prefetcher.h"

#include <algorithm>
#include <unordered_set>

namespace neurodb {
namespace scout {

using geom::Aabb;
using geom::ElementId;
using geom::Vec3;

const char* PrefetchMethodName(PrefetchMethod method) {
  switch (method) {
    case PrefetchMethod::kNone:
      return "None";
    case PrefetchMethod::kHilbert:
      return "Hilbert";
    case PrefetchMethod::kExtrapolation:
      return "Extrapolation";
    case PrefetchMethod::kScout:
      return "SCOUT";
  }
  return "Unknown";
}

std::vector<PrefetchMethod> AllPrefetchMethods() {
  return {PrefetchMethod::kNone, PrefetchMethod::kHilbert,
          PrefetchMethod::kExtrapolation, PrefetchMethod::kScout};
}

namespace {

/// Prefetch the given page indexes (skipping cached ones) up to the budget.
/// Returns the number of pages actually loaded.
size_t PrefetchPages(const PrefetchContext& ctx,
                     const std::vector<uint32_t>& page_indexes,
                     size_t budget) {
  size_t loaded = 0;
  for (uint32_t page_index : page_indexes) {
    if (loaded >= budget) break;
    storage::PageId id = ctx.index->PageAt(page_index);
    if (ctx.pool->Contains(id)) continue;
    if (ctx.pool->Prefetch(id).ok()) ++loaded;
  }
  return loaded;
}

// ---------------------------------------------------------------------------

class NonePrefetcher : public Prefetcher {
 public:
  const char* Name() const override { return "None"; }
  size_t AfterQuery(const Aabb&, const std::vector<ElementId>&,
                    size_t) override {
    return 0;
  }
};

// ---------------------------------------------------------------------------

/// Park & Kim style: the data is laid out in Hilbert order, so prefetch the
/// pages that follow (and precede) the pages the current query touched in
/// layout order.
class HilbertPrefetcher : public Prefetcher {
 public:
  explicit HilbertPrefetcher(const PrefetchContext& ctx) : ctx_(ctx) {}

  const char* Name() const override { return "Hilbert"; }

  size_t AfterQuery(const Aabb& query, const std::vector<ElementId>&,
                    size_t budget_pages) override {
    std::vector<uint32_t> touched = ctx_.index->PagesInRange(query);
    if (touched.empty()) return 0;
    uint32_t lo = touched.front();
    uint32_t hi = touched.back();
    std::vector<uint32_t> wanted;
    wanted.reserve(budget_pages);
    const uint32_t num_pages = static_cast<uint32_t>(ctx_.index->NumPages());
    // Alternate forward/backward from the touched run.
    for (uint32_t d = 1; wanted.size() < budget_pages; ++d) {
      bool any = false;
      if (hi + d < num_pages) {
        wanted.push_back(hi + d);
        any = true;
      }
      if (wanted.size() < budget_pages && lo >= d) {
        wanted.push_back(lo - d);
        any = true;
      }
      if (!any) break;
    }
    return PrefetchPages(ctx_, wanted, budget_pages);
  }

 private:
  PrefetchContext ctx_;
};

// ---------------------------------------------------------------------------

/// Linear extrapolation of the last two query centers.
class ExtrapolationPrefetcher : public Prefetcher {
 public:
  explicit ExtrapolationPrefetcher(const PrefetchContext& ctx) : ctx_(ctx) {}

  const char* Name() const override { return "Extrapolation"; }

  void Reset() override {
    prev_center_.reset();
    predicted_.clear();
  }

  std::vector<Aabb> PredictedBoxes() const override { return predicted_; }

  size_t AfterQuery(const Aabb& query, const std::vector<ElementId>&,
                    size_t budget_pages) override {
    Vec3 center = query.Center();
    size_t loaded = 0;
    predicted_.clear();
    if (prev_center_.has_value()) {
      Vec3 delta = center - *prev_center_;
      float side = query.Extent().x;
      // One and two steps ahead along the motion vector.
      for (int step = 1; step <= 2; ++step) {
        Aabb predicted =
            Aabb::Cube(center + delta * static_cast<float>(step), side);
        predicted_.push_back(predicted);
        if (loaded < budget_pages) {
          loaded += PrefetchPages(ctx_, ctx_.index->PagesInRange(predicted),
                                  budget_pages - loaded);
        }
      }
    }
    prev_center_ = center;
    return loaded;
  }

 private:
  PrefetchContext ctx_;
  std::optional<Vec3> prev_center_;
  std::vector<Aabb> predicted_;
};

// ---------------------------------------------------------------------------

/// SCOUT: reconstruct structures in the result, prune candidates across the
/// sequence, extrapolate the exits of the surviving candidates.
class ScoutPrefetcher : public Prefetcher {
 public:
  ScoutPrefetcher(const PrefetchContext& ctx, const ScoutOptions& options)
      : ctx_(ctx), options_(options) {}

  const char* Name() const override { return "SCOUT"; }

  void Reset() override {
    candidate_ids_.clear();
    prev_center_.reset();
    last_candidates_ = 0;
    predicted_.clear();
  }

  size_t CandidateCount() const override { return last_candidates_; }

  std::vector<Aabb> PredictedBoxes() const override { return predicted_; }

  size_t AfterQuery(const Aabb& query, const std::vector<ElementId>& result,
                    size_t budget_pages) override {
    // Clear up front: on any early exit PredictedBoxes() must report "no
    // prediction", not the previous step's stale boxes.
    predicted_.clear();
    auto structures_or = ExtractStructures(result, *ctx_.resolver, query,
                                           options_.structure);
    if (!structures_or.ok()) return 0;
    std::vector<Structure>& structures = structures_or.value();

    // Candidate pruning (paper Figure 5): the structure being followed must
    // appear in consecutive queries, so intersect the previous candidate
    // set with the structures present now.
    std::vector<const Structure*> candidates;
    if (!candidate_ids_.empty()) {
      for (const Structure& s : structures) {
        if (!s.HasExit()) continue;
        for (ElementId e : s.elements) {
          if (candidate_ids_.count(e) > 0) {
            candidates.push_back(&s);
            break;
          }
        }
      }
    }
    if (candidates.empty()) {
      // First query of the sequence (or track lost): every structure that
      // leaves the box is a candidate.
      for (const Structure& s : structures) {
        if (s.HasExit()) candidates.push_back(&s);
      }
    }
    last_candidates_ = candidates.size();

    candidate_ids_.clear();
    for (const Structure* s : candidates) {
      candidate_ids_.insert(s->elements.begin(), s->elements.end());
    }

    // Predict the next query location(s) by extrapolating the candidate
    // exits linearly, one user step beyond the boundary.
    Vec3 center = query.Center();
    float side = query.Extent().x;
    float step = side * 0.5f;
    if (prev_center_.has_value()) {
      double moved = geom::Distance(center, *prev_center_);
      if (moved > 0.0) step = static_cast<float>(moved);
    }
    prev_center_ = center;

    size_t loaded = 0;
    bool deep = options_.deep_lookahead && candidates.size() == 1;
    for (const Structure* s : candidates) {
      for (const StructureExit& exit : s->exits) {
        // Predictions are recorded independently of the page budget: a
        // cached session can still evaluate an exhausted-budget (or
        // zero-budget) prediction over already-resident pages for free.
        if (loaded >= budget_pages && predicted_.size() >= kMaxPredicted) {
          break;
        }
        Aabb predicted = Aabb::Cube(exit.point + exit.direction * step, side);
        if (predicted_.size() < kMaxPredicted) predicted_.push_back(predicted);
        if (loaded < budget_pages) {
          loaded += PrefetchPages(ctx_, ctx_.index->PagesInRange(predicted),
                                  budget_pages - loaded);
        }
        if (deep) {
          Aabb two_ahead =
              Aabb::Cube(exit.point + exit.direction * (2.0f * step), side);
          if (predicted_.size() < kMaxPredicted) {
            predicted_.push_back(two_ahead);
          }
          if (loaded < budget_pages) {
            loaded += PrefetchPages(ctx_, ctx_.index->PagesInRange(two_ahead),
                                    budget_pages - loaded);
          }
        }
      }
    }
    return loaded;
  }

 private:
  /// Bound on PredictedBoxes: pre-populating the result cache with many
  /// speculative boxes would push real step history out of a small cache.
  static constexpr size_t kMaxPredicted = 4;

  PrefetchContext ctx_;
  ScoutOptions options_;
  std::unordered_set<ElementId> candidate_ids_;
  std::optional<Vec3> prev_center_;
  size_t last_candidates_ = 0;
  std::vector<Aabb> predicted_;
};

}  // namespace

Result<std::unique_ptr<Prefetcher>> MakePrefetcher(
    PrefetchMethod method, const PrefetchContext& context,
    const ScoutOptions& scout_options) {
  if (method != PrefetchMethod::kNone &&
      (context.index == nullptr || context.pool == nullptr)) {
    return Status::InvalidArgument("MakePrefetcher: null index or pool");
  }
  switch (method) {
    case PrefetchMethod::kNone:
      return std::unique_ptr<Prefetcher>(new NonePrefetcher());
    case PrefetchMethod::kHilbert:
      return std::unique_ptr<Prefetcher>(new HilbertPrefetcher(context));
    case PrefetchMethod::kExtrapolation:
      return std::unique_ptr<Prefetcher>(new ExtrapolationPrefetcher(context));
    case PrefetchMethod::kScout:
      if (context.resolver == nullptr) {
        return Status::InvalidArgument(
            "MakePrefetcher: SCOUT needs a segment resolver");
      }
      return std::unique_ptr<Prefetcher>(
          new ScoutPrefetcher(context, scout_options));
  }
  return Status::InvalidArgument("MakePrefetcher: unknown method");
}

}  // namespace scout
}  // namespace neurodb
