// NeuroDB — WalkthroughSession: the interactive exploration loop.
//
// Reproduces the demo's walkthrough (paper Section 3.2): a scientist issues
// range queries in close succession along a path; between queries there is
// *think time* during which data is visualized and analyzed — and during
// which a prefetcher may warm the buffer pool. Time is modeled on a
// SimClock so the experiments are exact and portable (DESIGN.md Section 3):
// each demand page miss costs DiskCostModel::page_read_micros of stall; a
// prefetcher may load think_time/page_read pages per step for free (the
// reads overlap the user's thinking).

#ifndef NEURODB_SCOUT_SESSION_H_
#define NEURODB_SCOUT_SESSION_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "flat/flat_index.h"
#include "geom/aabb.h"
#include "neuro/circuit.h"
#include "obs/trace.h"
#include "scout/prefetcher.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"

namespace neurodb {
namespace scout {

/// Session tuning.
struct SessionOptions {
  /// Buffer pool capacity in pages.
  size_t pool_pages = 4096;
  /// Simulated think time between queries, microseconds.
  uint64_t think_time_us = 400'000;
  /// Disk cost model (drives both stall and the prefetch budget).
  storage::DiskCostModel cost;
  /// SCOUT tuning (ignored by other methods).
  ScoutOptions scout;
  /// Result caching (engine::Session): keep the last result_cache_boxes
  /// evaluated step boxes with their exact result sets and answer
  /// overlapping steps by delta decomposition (src/cache/). Off by default
  /// — a cached session delivers results in ascending id order instead of
  /// index crawl order.
  bool cache_results = false;
  size_t result_cache_boxes = 8;
  /// Delta kNN seeding (engine::Session::StepKnn): reuse the previous
  /// step's hit list to seed the expanding-ring search's starting radius —
  /// a slowly moving kNN query starts its first ring already tight. Purely
  /// a starting point for the crawl; answers are bit-identical either way
  /// (flat::FlatIndex::Knn).
  bool seed_knn = true;
  /// Attach an obs::Trace span tree to every StepRecord
  /// (engine::Session): root span "session.step" with "query" and
  /// "prefetch" children, tagged with epoch / results / pool activity.
  /// Off by default — tracing allocates per step.
  bool trace_steps = false;

  /// Pages a prefetcher can load during one think pause, capped at the
  /// pool capacity — a longer pause cannot usefully prefetch more pages
  /// than the pool can hold (it would evict what it just warmed).
  size_t PrefetchBudget() const {
    if (cost.page_read_micros == 0) return 0;
    return std::min<size_t>(
        static_cast<size_t>(think_time_us / cost.page_read_micros),
        pool_pages);
  }
};

/// Per-query record (the demo's live panel rows).
struct StepRecord {
  uint64_t stall_us = 0;       // time the user waited for this query
  uint64_t pages_missed = 0;   // demand misses
  uint64_t pages_hit = 0;      // pool hits
  uint64_t results = 0;        // result elements
  uint64_t prefetched = 0;     // pages prefetched after this query
  uint64_t candidates = 0;     // SCOUT candidate structures (else 0)
  /// Data epoch this step answered at (0 for sessions opened outside the
  /// engine's update path, or while no update was ever applied).
  uint64_t epoch = 0;
  /// Result-cache delta answering (engine::Session with cache_results):
  /// fraction of the query volume served from the cache, and the fraction
  /// the backend still had to answer. Uncached steps report 0 / 1.
  double cache_hit_fraction = 0.0;
  double delta_volume_fraction = 1.0;
  /// Span tree for this step (SessionOptions::trace_steps; otherwise null).
  std::shared_ptr<const obs::Trace> trace;
};

/// Whole-walkthrough summary (paper Figure 6's statistics).
struct SessionResult {
  std::vector<StepRecord> steps;
  uint64_t total_stall_us = 0;   // sum of per-query stalls
  uint64_t total_time_us = 0;    // stalls + think time
  uint64_t pages_missed = 0;     // "additionally retrieved"
  uint64_t pages_hit = 0;
  uint64_t prefetch_issued = 0;  // "prefetched in total"
  /// "Correctly prefetched": prefetched pages later demand-fetched. In a
  /// result-cached session this is a *lower bound* — a step answered
  /// entirely from the result cache consumes its prefetched pages via
  /// Peek, which never demands them from the pool, so the prefetches
  /// that worked best are not counted here.
  uint64_t prefetch_used = 0;
  /// Result-cache entries dropped because updates dirtied their region
  /// mid-session (invalidation churn; 0 for uncached sessions).
  uint64_t cache_invalidated_boxes = 0;

  /// Fraction of prefetched pages that were later demanded.
  double PrefetchPrecision() const {
    return prefetch_issued == 0
               ? 0.0
               : static_cast<double>(prefetch_used) / prefetch_issued;
  }

  /// Fraction of demand fetches served from cache.
  double HitRate() const {
    uint64_t total = pages_hit + pages_missed;
    return total == 0 ? 0.0 : static_cast<double>(pages_hit) / total;
  }

  /// Mean per-step result-cache coverage (0 for uncached sessions).
  double MeanCacheHitFraction() const {
    if (steps.empty()) return 0.0;
    double sum = 0.0;
    for (const StepRecord& step : steps) sum += step.cache_hit_fraction;
    return sum / static_cast<double>(steps.size());
  }

  /// Mean per-step residual volume fraction (1 for uncached sessions).
  double MeanDeltaVolumeFraction() const {
    if (steps.empty()) return 1.0;
    double sum = 0.0;
    for (const StepRecord& step : steps) sum += step.delta_volume_fraction;
    return sum / static_cast<double>(steps.size());
  }
};

/// Runs query sequences against a FLAT-indexed model through a private
/// buffer pool with a simulated clock.
class WalkthroughSession {
 public:
  /// `resolver` may be null if SCOUT is never requested.
  WalkthroughSession(const flat::FlatIndex* index, storage::PageStore* store,
                     const neuro::SegmentResolver* resolver,
                     SessionOptions options = SessionOptions());

  /// Execute the query sequence with the given prefetching method. Each run
  /// starts with a cold pool and a fresh clock.
  Result<SessionResult> Run(const std::vector<geom::Aabb>& queries,
                            PrefetchMethod method);

  const SessionOptions& options() const { return options_; }

 private:
  const flat::FlatIndex* index_;
  storage::PageStore* store_;
  const neuro::SegmentResolver* resolver_;
  SessionOptions options_;
};

}  // namespace scout
}  // namespace neurodb

#endif  // NEURODB_SCOUT_SESSION_H_
