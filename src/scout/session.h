// NeuroDB — WalkthroughSession: the interactive exploration loop.
//
// Reproduces the demo's walkthrough (paper Section 3.2): a scientist issues
// range queries in close succession along a path; between queries there is
// *think time* during which data is visualized and analyzed — and during
// which a prefetcher may warm the buffer pool. Time is modeled on a
// SimClock so the experiments are exact and portable (DESIGN.md Section 3):
// each demand page miss costs DiskCostModel::page_read_micros of stall; a
// prefetcher may load think_time/page_read pages per step for free (the
// reads overlap the user's thinking).

#ifndef NEURODB_SCOUT_SESSION_H_
#define NEURODB_SCOUT_SESSION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "flat/flat_index.h"
#include "geom/aabb.h"
#include "neuro/circuit.h"
#include "scout/prefetcher.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"

namespace neurodb {
namespace scout {

/// Session tuning.
struct SessionOptions {
  /// Buffer pool capacity in pages.
  size_t pool_pages = 4096;
  /// Simulated think time between queries, microseconds.
  uint64_t think_time_us = 400'000;
  /// Disk cost model (drives both stall and the prefetch budget).
  storage::DiskCostModel cost;
  /// SCOUT tuning (ignored by other methods).
  ScoutOptions scout;

  /// Pages a prefetcher can load during one think pause.
  size_t PrefetchBudget() const {
    return cost.page_read_micros == 0
               ? 0
               : static_cast<size_t>(think_time_us / cost.page_read_micros);
  }
};

/// Per-query record (the demo's live panel rows).
struct StepRecord {
  uint64_t stall_us = 0;       // time the user waited for this query
  uint64_t pages_missed = 0;   // demand misses
  uint64_t pages_hit = 0;      // pool hits
  uint64_t results = 0;        // result elements
  uint64_t prefetched = 0;     // pages prefetched after this query
  uint64_t candidates = 0;     // SCOUT candidate structures (else 0)
};

/// Whole-walkthrough summary (paper Figure 6's statistics).
struct SessionResult {
  std::vector<StepRecord> steps;
  uint64_t total_stall_us = 0;   // sum of per-query stalls
  uint64_t total_time_us = 0;    // stalls + think time
  uint64_t pages_missed = 0;     // "additionally retrieved"
  uint64_t pages_hit = 0;
  uint64_t prefetch_issued = 0;  // "prefetched in total"
  uint64_t prefetch_used = 0;    // "correctly prefetched"

  /// Fraction of prefetched pages that were later demanded.
  double PrefetchPrecision() const {
    return prefetch_issued == 0
               ? 0.0
               : static_cast<double>(prefetch_used) / prefetch_issued;
  }

  /// Fraction of demand fetches served from cache.
  double HitRate() const {
    uint64_t total = pages_hit + pages_missed;
    return total == 0 ? 0.0 : static_cast<double>(pages_hit) / total;
  }
};

/// Runs query sequences against a FLAT-indexed model through a private
/// buffer pool with a simulated clock.
class WalkthroughSession {
 public:
  /// `resolver` may be null if SCOUT is never requested.
  WalkthroughSession(const flat::FlatIndex* index, storage::PageStore* store,
                     const neuro::SegmentResolver* resolver,
                     SessionOptions options = SessionOptions());

  /// Execute the query sequence with the given prefetching method. Each run
  /// starts with a cold pool and a fresh clock.
  Result<SessionResult> Run(const std::vector<geom::Aabb>& queries,
                            PrefetchMethod method);

  const SessionOptions& options() const { return options_; }

 private:
  const flat::FlatIndex* index_;
  storage::PageStore* store_;
  const neuro::SegmentResolver* resolver_;
  SessionOptions options_;
};

}  // namespace scout
}  // namespace neurodb

#endif  // NEURODB_SCOUT_SESSION_H_
