// NeuroDB — prefetchers for moving range query sequences.
//
// Implements SCOUT (content-aware prediction + cross-query candidate
// pruning, paper Section 3.1) and the baselines the demo lets the audience
// compare against (Section 3.2): no prefetching, Hilbert-order prefetching
// (Park & Kim style), and linear extrapolation of query centers.
//
// A prefetcher observes each executed query and may warm the buffer pool
// with up to `budget_pages` pages — the number of page reads that fit into
// the user's think time between queries.

#ifndef NEURODB_SCOUT_PREFETCHER_H_
#define NEURODB_SCOUT_PREFETCHER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/result.h"
#include "flat/flat_index.h"
#include "geom/aabb.h"
#include "neuro/circuit.h"
#include "scout/structure.h"
#include "storage/buffer_pool.h"

namespace neurodb {
namespace scout {

/// Prefetching strategies available to the walkthrough session.
enum class PrefetchMethod {
  kNone,
  kHilbert,
  kExtrapolation,
  kScout,
};

/// Human-readable method name.
const char* PrefetchMethodName(PrefetchMethod method);

/// All methods in bench reporting order.
std::vector<PrefetchMethod> AllPrefetchMethods();

/// SCOUT tuning.
struct ScoutOptions {
  /// Structure connectivity tolerance (µm).
  StructureOptions structure;
  /// Look two steps ahead once a single candidate structure remains.
  bool deep_lookahead = true;
};

/// Wiring shared by all prefetchers.
struct PrefetchContext {
  const flat::FlatIndex* index = nullptr;
  storage::BufferPool* pool = nullptr;
  /// Needed by SCOUT (skeleton reconstruction); others ignore it.
  const neuro::SegmentResolver* resolver = nullptr;
};

/// Interface: one instance drives one query sequence.
class Prefetcher {
 public:
  virtual ~Prefetcher() = default;

  virtual const char* Name() const = 0;

  /// Forget all sequence state (start of a new walkthrough).
  virtual void Reset() {}

  /// Observe executed query `query` with result `result`; issue up to
  /// `budget_pages` pool prefetches. Returns pages actually prefetched.
  virtual size_t AfterQuery(const geom::Aabb& query,
                            const std::vector<geom::ElementId>& result,
                            size_t budget_pages) = 0;

  /// Number of candidate structures SCOUT is still tracking (paper Figure
  /// 5's shrinking candidate set); other methods report 0.
  virtual size_t CandidateCount() const { return 0; }

  /// Where the prefetcher believes the *next* query boxes land, most
  /// likely first, as computed by the latest AfterQuery call. Box-predicting
  /// methods (extrapolation, SCOUT) report a few boxes; page-order methods
  /// (Hilbert) and kNone report none. The result-cache prefetch path
  /// evaluates these boxes during think time so a correctly predicted next
  /// step is answered without any demand I/O at all.
  virtual std::vector<geom::Aabb> PredictedBoxes() const { return {}; }
};

/// Construct a prefetcher. SCOUT requires context.resolver != nullptr.
Result<std::unique_ptr<Prefetcher>> MakePrefetcher(
    PrefetchMethod method, const PrefetchContext& context,
    const ScoutOptions& scout_options = ScoutOptions());

}  // namespace scout
}  // namespace neurodb

#endif  // NEURODB_SCOUT_PREFETCHER_H_
