// NeuroDB — structure (topological skeleton) extraction from query results.
//
// SCOUT's key idea (paper Section 3.1): "While the result of query q in the
// sequence is loaded, SCOUT already starts to reconstruct the dominating
// structures/the topological skeleton in q and approximates them with a
// graph. Once the graph is constructed, it is traversed to find the
// locations where its edges exit q."
//
// Here a *structure* is a connected component of branch segments (segments
// are adjacent when their endpoints nearly touch); its *exits* are the
// points and outward directions where the component's skeleton crosses the
// query boundary.

#ifndef NEURODB_SCOUT_STRUCTURE_H_
#define NEURODB_SCOUT_STRUCTURE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "geom/aabb.h"
#include "geom/element.h"
#include "geom/segment.h"
#include "neuro/circuit.h"

namespace neurodb {
namespace scout {

/// A boundary crossing of a structure's skeleton.
struct StructureExit {
  /// Where the skeleton leaves the query box.
  geom::Vec3 point;
  /// Outward direction at the exit (unit length).
  geom::Vec3 direction;
};

/// One connected structure inside a query result.
struct Structure {
  /// Member element ids, sorted (used for cross-query identity matching).
  std::vector<geom::ElementId> elements;
  std::vector<StructureExit> exits;

  bool HasExit() const { return !exits.empty(); }

  /// True if the two structures share at least one element id (both sorted).
  bool SharesElements(const std::vector<geom::ElementId>& other_sorted) const;
};

/// Extraction tuning.
struct StructureOptions {
  /// Segments whose endpoints are closer than this are connected (µm).
  float connect_tol = 1.0f;
};

/// Reconstruct the structures present in a query result. `ids` is the
/// result of a range query over `box`; geometry is resolved via `resolver`.
/// Ids missing from the resolver yield NotFound.
Result<std::vector<Structure>> ExtractStructures(
    const std::vector<geom::ElementId>& ids,
    const neuro::SegmentResolver& resolver, const geom::Aabb& box,
    const StructureOptions& options = StructureOptions());

}  // namespace scout
}  // namespace neurodb

#endif  // NEURODB_SCOUT_STRUCTURE_H_
