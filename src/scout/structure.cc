#include "scout/structure.h"
#include <array>

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace neurodb {
namespace scout {

using geom::Aabb;
using geom::ElementId;
using geom::Segment;
using geom::Vec3;

bool Structure::SharesElements(
    const std::vector<ElementId>& other_sorted) const {
  // Both lists sorted: linear merge scan.
  size_t i = 0;
  size_t j = 0;
  while (i < elements.size() && j < other_sorted.size()) {
    if (elements[i] == other_sorted[j]) return true;
    if (elements[i] < other_sorted[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

namespace {

/// Disjoint-set over segment indices.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<uint32_t>(i);
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[b] = a;
  }

 private:
  std::vector<uint32_t> parent_;
};

/// Quantized 3-D grid key for endpoint hashing.
struct CellKey {
  int64_t x;
  int64_t y;
  int64_t z;
  bool operator==(const CellKey& o) const {
    return x == o.x && y == o.y && z == o.z;
  }
};

struct CellKeyHash {
  size_t operator()(const CellKey& k) const {
    uint64_t h = static_cast<uint64_t>(k.x) * 0x9e3779b97f4a7c15ULL;
    h ^= static_cast<uint64_t>(k.y) * 0xc2b2ae3d27d4eb4fULL;
    h ^= static_cast<uint64_t>(k.z) * 0x165667b19e3779f9ULL;
    return static_cast<size_t>(h ^ (h >> 29));
  }
};

CellKey CellOf(const Vec3& p, float cell) {
  return CellKey{static_cast<int64_t>(std::floor(p.x / cell)),
                 static_cast<int64_t>(std::floor(p.y / cell)),
                 static_cast<int64_t>(std::floor(p.z / cell))};
}

}  // namespace

Result<std::vector<Structure>> ExtractStructures(
    const std::vector<ElementId>& ids, const neuro::SegmentResolver& resolver,
    const Aabb& box, const StructureOptions& options) {
  if (!(options.connect_tol > 0.0f)) {
    return Status::InvalidArgument("StructureOptions: connect_tol must be > 0");
  }

  const size_t n = ids.size();
  std::vector<Segment> segs(n);
  for (size_t i = 0; i < n; ++i) {
    NEURODB_ASSIGN_OR_RETURN(segs[i], resolver.Find(ids[i]));
  }

  // Hash all endpoints into a grid of cell size connect_tol; segments with
  // endpoints in the same or adjacent cells within tolerance are connected.
  const float cell = options.connect_tol;
  const double tol2 =
      static_cast<double>(options.connect_tol) * options.connect_tol;
  std::unordered_map<CellKey, std::vector<uint32_t>, CellKeyHash> grid;
  grid.reserve(2 * n);
  auto endpoints = [&](uint32_t i) {
    return std::array<Vec3, 2>{{segs[i].a, segs[i].b}};
  };
  for (uint32_t i = 0; i < n; ++i) {
    for (const Vec3& p : endpoints(i)) grid[CellOf(p, cell)].push_back(i);
  }

  UnionFind uf(n);
  for (uint32_t i = 0; i < n; ++i) {
    for (const Vec3& p : endpoints(i)) {
      CellKey base = CellOf(p, cell);
      for (int dz = -1; dz <= 1; ++dz) {
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            auto it = grid.find(CellKey{base.x + dx, base.y + dy, base.z + dz});
            if (it == grid.end()) continue;
            for (uint32_t j : it->second) {
              if (j == i) continue;
              // Endpoint-to-endpoint proximity test.
              for (const Vec3& q : endpoints(j)) {
                if (geom::SquaredDistance(p, q) <= tol2) {
                  uf.Union(i, j);
                  break;
                }
              }
            }
          }
        }
      }
    }
  }

  // Group by component root.
  std::unordered_map<uint32_t, uint32_t> root_to_structure;
  std::vector<Structure> structures;
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t root = uf.Find(i);
    auto [it, inserted] =
        root_to_structure.emplace(root, static_cast<uint32_t>(structures.size()));
    if (inserted) structures.emplace_back();
    Structure& s = structures[it->second];
    s.elements.push_back(ids[i]);

    // Exit detection: an endpoint outside the box means the skeleton leaves
    // the query there.
    const Vec3& a = segs[i].a;
    const Vec3& b = segs[i].b;
    bool a_in = box.Contains(a);
    bool b_in = box.Contains(b);
    if (a_in != b_in) {
      const Vec3& inside = a_in ? a : b;
      const Vec3& outside = a_in ? b : a;
      // Blend the local segment direction with the chord from the query
      // center to the exit: real branches are jagged (paper Section 3), so
      // the chord smooths the extrapolation the way the skeleton graph
      // does, while the local direction keeps the turn information.
      Vec3 local = (outside - inside).Normalized();
      Vec3 chord = (outside - box.Center()).Normalized();
      Vec3 dir = (local + chord).Normalized();
      if (dir.SquaredNorm() > 0.0) {
        s.exits.push_back(StructureExit{outside, dir});
      }
    }
  }
  for (auto& s : structures) {
    std::sort(s.elements.begin(), s.elements.end());
  }
  return structures;
}

}  // namespace scout
}  // namespace neurodb
