// NeuroDB — ResultCache: semantic caching of evaluated range queries.
//
// Interactive exploration is dominated by *overlap*: consecutive
// walkthrough boxes share most of their volume, and SCOUT predicts where
// the next box lands. A ResultCache keeps the last K evaluated boxes with
// their exact, id-ordered result sets; DeltaPlanner (delta_planner.h) then
// decomposes a new box into a covered fragment answered from the cache and
// at most six residual boxes answered by the backend. Because every cached
// entry is the complete answer for its coverage AABB, an element
// intersecting the covered fragment is guaranteed to be in the entry — the
// delta answer is exact, not approximate (cf. incremental query answering
// under updates, PAPERS.md).
//
// The cache is a pure geometry/value structure: it knows nothing about
// backends, pools or clocks, so one implementation serves the engine's
// warm/batch path, the per-lane batch caches and the exploration sessions.

#ifndef NEURODB_CACHE_RESULT_CACHE_H_
#define NEURODB_CACHE_RESULT_CACHE_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>

#include "geom/aabb.h"
#include "geom/element.h"
#include "storage/epoch.h"

namespace neurodb {
namespace cache {

/// Sort elements ascending by id — the one ordering every cached result
/// set and delta-merged answer uses.
inline void SortById(geom::ElementVec* elements) {
  std::sort(elements->begin(), elements->end(),
            [](const geom::SpatialElement& a, const geom::SpatialElement& b) {
              return a.id < b.id;
            });
}

/// Cache lifecycle counters.
struct CacheStats {
  uint64_t lookups = 0;
  /// Lookups that found an overlapping entry.
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  /// Entries dropped by capacity or subsumption.
  uint64_t evictions = 0;
  /// Entries dropped because an update batch dirtied their region
  /// (AdvanceEpoch) — the cache's invalidation churn, reported alongside
  /// hits/misses by the update benchmarks and session aggregates.
  uint64_t invalidated_boxes = 0;
};

/// One cached evaluated box: its coverage AABB, the exact result set
/// (ascending by element id), and the data epoch it was computed at. Every
/// resident entry is valid for the *current* epoch — AdvanceEpoch drops
/// entries an update invalidated — so the tag records provenance, not
/// staleness.
struct CachedResult {
  geom::Aabb box;
  geom::ElementVec results;
  storage::Epoch epoch = 0;
};

/// FIFO cache of the last `capacity` evaluated boxes. Insertion drops
/// entries the new box subsumes; inserting a box an existing entry already
/// covers refreshes that entry instead of duplicating it.
class ResultCache {
 public:
  explicit ResultCache(size_t capacity_boxes = 8)
      : capacity_(capacity_boxes) {}

  size_t capacity() const { return capacity_; }
  size_t size() const { return entries_.size(); }
  bool enabled() const { return capacity_ > 0; }

  const CachedResult& entry(size_t i) const { return entries_[i]; }

  /// Remember `results` (must be the complete answer for `box`, sorted
  /// ascending by id) as the newest entry, stamped with the current epoch.
  /// No-op when capacity is 0.
  void Insert(const geom::Aabb& box, geom::ElementVec results);

  /// An update batch moved the data to `epoch`, touching `dirty`: drop
  /// exactly the entries whose coverage box intersects the dirty region
  /// (counted as invalidated_boxes, not evictions) — everything else still
  /// answers byte-identically at the new epoch. An empty dirty box (a
  /// compaction, which changes layout but not results) just advances the
  /// stamp used for future inserts.
  void AdvanceEpoch(storage::Epoch epoch, const geom::Aabb& dirty);

  /// The epoch new entries are stamped with.
  storage::Epoch epoch() const { return epoch_; }

  /// True when an existing entry's coverage box contains `box` — an
  /// insert for `box` would add nothing, so callers can skip computing
  /// the results at all (think-time prepopulation of a repeating path).
  bool Covers(const geom::Aabb& box) const {
    for (const CachedResult& entry : entries_) {
      if (entry.box.Contains(box)) return true;
    }
    return false;
  }

  /// Index of the entry whose intersection with `box` has the largest
  /// volume (ties: the most recent entry), provided that volume is
  /// positive and covers at least `min_covered_fraction` of the box —
  /// overlaps below the threshold are misses, so the hit/miss statistics
  /// report coverage that was actually worth serving. Counts one lookup
  /// and a hit or a miss.
  std::optional<size_t> BestOverlap(const geom::Aabb& box,
                                    double min_covered_fraction = 0.0);

  void Clear();

  const CacheStats& stats() const { return stats_; }

 private:
  size_t capacity_;
  /// Oldest first; back is the newest.
  std::deque<CachedResult> entries_;
  CacheStats stats_;
  storage::Epoch epoch_ = 0;
};

}  // namespace cache
}  // namespace neurodb

#endif  // NEURODB_CACHE_RESULT_CACHE_H_
