#include "cache/result_cache.h"

#include <utility>

namespace neurodb {
namespace cache {

void ResultCache::Insert(const geom::Aabb& box, geom::ElementVec results) {
  // Zero-volume (planar/degenerate) boxes can never serve a hit —
  // BestOverlap demands positive overlap volume — so storing them would
  // only evict useful entries from the FIFO.
  if (capacity_ == 0 || !box.IsValid() || box.Volume() <= 0.0) return;

  // An existing entry covering the whole box already answers everything the
  // new entry could; refresh its recency instead of storing a subset.
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].box.Contains(box)) {
      CachedResult kept = std::move(entries_[i]);
      entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(i));
      entries_.push_back(std::move(kept));
      return;
    }
  }

  // Drop entries the new box subsumes — they can never win BestOverlap
  // against it.
  for (size_t i = entries_.size(); i-- > 0;) {
    if (box.Contains(entries_[i].box)) {
      entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(i));
      ++stats_.evictions;
    }
  }

  entries_.push_back(CachedResult{box, std::move(results), epoch_});
  ++stats_.insertions;
  while (entries_.size() > capacity_) {
    entries_.pop_front();
    ++stats_.evictions;
  }
}

void ResultCache::AdvanceEpoch(storage::Epoch epoch, const geom::Aabb& dirty) {
  epoch_ = epoch;
  if (!dirty.IsValid()) return;
  for (size_t i = entries_.size(); i-- > 0;) {
    if (entries_[i].box.Intersects(dirty)) {
      entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(i));
      ++stats_.invalidated_boxes;
    }
  }
}

std::optional<size_t> ResultCache::BestOverlap(const geom::Aabb& box,
                                               double min_covered_fraction) {
  ++stats_.lookups;
  std::optional<size_t> best;
  // Zero-volume (face-touch) intersections cover nothing — serving them
  // would run the full query as residuals plus a pointless merge — and
  // anything below the caller's coverage threshold is likewise a miss.
  double best_volume =
      std::max(0.0, box.Volume() * min_covered_fraction);
  if (box.IsValid()) {
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (!entries_[i].box.Intersects(box)) continue;
      double volume = geom::OverlapVolume(entries_[i].box, box);
      // Among equal qualifying overlaps, >= prefers the most recent entry.
      if (volume > 0.0 && volume >= best_volume) {
        best_volume = volume;
        best = i;
      }
    }
  }
  if (best.has_value()) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
  return best;
}

void ResultCache::Clear() {
  stats_.evictions += entries_.size();
  entries_.clear();
}

}  // namespace cache
}  // namespace neurodb
