// NeuroDB — DeltaPlanner: decompose a range query against a ResultCache.
//
// Given a new query box and the cached coverage boxes, the planner picks
// the cached entry with the largest overlap and splits the query into
//
//   * one covered fragment (query ∩ entry) answered from the cache —
//     every cached element whose bounds intersect the query is part of the
//     answer, and no intersecting element can be missing because the
//     fragment lies inside the entry's coverage box;
//   * at most six residual boxes covering query \ entry (the classic
//     axis-aligned box subtraction: two z slabs, two y slabs, two x slabs)
//     answered by the backend.
//
// Residuals are interior-disjoint but share faces with each other and with
// the fragment (closed boxes), so an element touching a shared face can be
// reported by several parts; MergeById deduplicates under the global
// ascending-id order, making the merged answer byte-identical (as an
// id-ordered set) to a full re-query.

#ifndef NEURODB_CACHE_DELTA_PLANNER_H_
#define NEURODB_CACHE_DELTA_PLANNER_H_

#include <functional>
#include <optional>
#include <vector>

#include "cache/result_cache.h"
#include "common/result.h"
#include "geom/aabb.h"
#include "geom/element.h"
#include "geom/visitor.h"

namespace neurodb {
namespace cache {

/// How one query box decomposes against the cache.
struct DeltaPlan {
  /// Cache entry serving the covered fragment; nullopt on a full miss
  /// (then `residuals` is exactly the query box). Overlaps covering less
  /// than kMinCoveredFraction of the query are treated as misses: a
  /// sliver overlap would pay up to six residual queries plus the merge
  /// for essentially no coverage — worse than one full query.
  std::optional<size_t> source;
  /// query ∩ source coverage box (empty on a miss).
  geom::Aabb covered;
  /// Uncovered parts, at most six interior-disjoint boxes.
  std::vector<geom::Aabb> residuals;
  /// Volume of `covered` / volume of the query. 0 on a miss — and a
  /// zero-volume (degenerate) query is always a miss, since the lookup
  /// demands a positive overlap volume.
  double covered_fraction = 0.0;
  /// 1 - covered_fraction: the volume the backend must still answer.
  double residual_fraction = 1.0;
};

class DeltaPlanner {
 public:
  /// Coverage below this fraction of the query volume is not worth the
  /// residual decomposition; the plan degrades to a full miss.
  static constexpr double kMinCoveredFraction = 0.05;

  /// Plan `box` against `cache` (counts a cache lookup).
  static DeltaPlan Plan(ResultCache& cache, const geom::Aabb& box);

  /// The full delta protocol: plan `box`, answer every residual through
  /// `run_residual` (a backend or index range query into the visitor),
  /// and merge with the covered fragment under the ascending-id order.
  /// On a miss the one "residual" is the whole box, so the caller needs
  /// no separate path. The caller streams the returned answer and
  /// decides whether to Insert it back into `cache`. `plan_out` (may be
  /// null) receives the plan for statistics.
  static Result<geom::ElementVec> Answer(
      ResultCache& cache, const geom::Aabb& box,
      const std::function<Status(const geom::Aabb&,
                                 geom::CollectingVisitor*)>& run_residual,
      DeltaPlan* plan_out);

  /// `outer \ (outer ∩ clip)` as at most six interior-disjoint closed
  /// boxes. Empty when clip covers outer; {outer} when they are disjoint.
  static std::vector<geom::Aabb> SubtractBox(const geom::Aabb& outer,
                                             const geom::Aabb& clip);

  /// The delta answer: `entry`'s cached elements filtered by exact
  /// bounds-vs-`box` intersection, merged with the residual query results,
  /// deduplicated, ascending by id. `residual_results` need not be sorted.
  static geom::ElementVec MergeById(const CachedResult& entry,
                                    const geom::Aabb& box,
                                    geom::ElementVec residual_results);
};

}  // namespace cache
}  // namespace neurodb

#endif  // NEURODB_CACHE_DELTA_PLANNER_H_
