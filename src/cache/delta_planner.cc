#include "cache/delta_planner.h"

#include <algorithm>

namespace neurodb {
namespace cache {

using geom::Aabb;

std::vector<Aabb> DeltaPlanner::SubtractBox(const Aabb& outer,
                                            const Aabb& clip) {
  std::vector<Aabb> out;
  if (!outer.IsValid()) return out;
  Aabb c = Aabb::Intersection(outer, clip);
  if (c.IsEmpty()) {
    out.push_back(outer);
    return out;
  }

  // Slab decomposition: peel z first, then y within the clip's z range,
  // then x within the clip's z and y ranges. A point of `outer` outside
  // `c` falls into exactly one slab's interior; slabs only share faces.
  auto emit = [&out](const Aabb& box) { out.push_back(box); };
  if (outer.min.z < c.min.z) {
    emit(Aabb({outer.min.x, outer.min.y, outer.min.z},
              {outer.max.x, outer.max.y, c.min.z}));
  }
  if (c.max.z < outer.max.z) {
    emit(Aabb({outer.min.x, outer.min.y, c.max.z},
              {outer.max.x, outer.max.y, outer.max.z}));
  }
  if (outer.min.y < c.min.y) {
    emit(Aabb({outer.min.x, outer.min.y, c.min.z},
              {outer.max.x, c.min.y, c.max.z}));
  }
  if (c.max.y < outer.max.y) {
    emit(Aabb({outer.min.x, c.max.y, c.min.z},
              {outer.max.x, outer.max.y, c.max.z}));
  }
  if (outer.min.x < c.min.x) {
    emit(Aabb({outer.min.x, c.min.y, c.min.z},
              {c.min.x, c.max.y, c.max.z}));
  }
  if (c.max.x < outer.max.x) {
    emit(Aabb({c.max.x, c.min.y, c.min.z},
              {outer.max.x, c.max.y, c.max.z}));
  }
  return out;
}

DeltaPlan DeltaPlanner::Plan(ResultCache& cache, const Aabb& box) {
  DeltaPlan plan;
  // The coverage threshold lives in the lookup so the cache's hit/miss
  // statistics report only coverage that was actually worth serving.
  std::optional<size_t> best =
      cache.BestOverlap(box, kMinCoveredFraction);
  if (!best.has_value()) {
    plan.residuals.push_back(box);
    return plan;
  }

  plan.source = best;
  const Aabb& coverage = cache.entry(*best).box;
  plan.covered = Aabb::Intersection(box, coverage);
  plan.residuals = SubtractBox(box, coverage);

  // BestOverlap demands positive overlap volume, so a hit implies a
  // positive-volume query box (guarded anyway: never divide by zero).
  double box_volume = box.Volume();
  plan.covered_fraction =
      box_volume > 0.0 ? std::min(1.0, plan.covered.Volume() / box_volume)
                       : 0.0;
  plan.residual_fraction = 1.0 - plan.covered_fraction;
  return plan;
}

Result<geom::ElementVec> DeltaPlanner::Answer(
    ResultCache& cache, const Aabb& box,
    const std::function<Status(const Aabb&, geom::CollectingVisitor*)>&
        run_residual,
    DeltaPlan* plan_out) {
  DeltaPlan plan = Plan(cache, box);

  geom::CollectingVisitor residual_out;
  for (const Aabb& residual : plan.residuals) {
    NEURODB_RETURN_NOT_OK(run_residual(residual, &residual_out));
  }

  geom::ElementVec merged;
  if (plan.source.has_value()) {
    merged = MergeById(cache.entry(*plan.source), box,
                       residual_out.TakeElements());
  } else {
    merged = residual_out.TakeElements();
    SortById(&merged);
  }
  if (plan_out != nullptr) *plan_out = std::move(plan);
  return merged;
}

geom::ElementVec DeltaPlanner::MergeById(const CachedResult& entry,
                                         const Aabb& box,
                                         geom::ElementVec residual_results) {
  // Sort only the (small) residual part; the cached entry is already
  // ascending by id and filtering preserves that, so one inplace_merge
  // keeps the hot high-coverage path linear in the cached set instead of
  // O(n log n).
  geom::ElementVec merged = std::move(residual_results);
  SortById(&merged);
  size_t residual_count = merged.size();
  for (const geom::SpatialElement& e : entry.results) {
    if (e.bounds.Intersects(box)) merged.push_back(e);
  }
  std::inplace_merge(
      merged.begin(),
      merged.begin() + static_cast<ptrdiff_t>(residual_count), merged.end(),
      [](const geom::SpatialElement& a, const geom::SpatialElement& b) {
        return a.id < b.id;
      });
  merged.erase(std::unique(merged.begin(), merged.end(),
                           [](const geom::SpatialElement& a,
                              const geom::SpatialElement& b) {
                             return a.id == b.id;
                           }),
               merged.end());
  return merged;
}

}  // namespace cache
}  // namespace neurodb
