// Experiment E2 (paper Section 2.1 claim): FLAT's query cost is independent
// of dataset density; the R-tree degrades as density rises. Fixed domain
// and query size, element count swept 1x..16x. The density-independence
// metric is pages read per result page — constant for FLAT.

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "common/table.h"
#include "flat/flat_index.h"
#include "neuro/workload.h"
#include "rtree/paged_rtree.h"

using namespace neurodb;
using geom::Aabb;
using geom::Vec3;

int main() {
  std::printf(
      "E2: density sweep at fixed query size (paper Sec 2.1 claim)\n"
      "Domain 100^3 um, query side 25 um, 20 data-centered queries/row.\n\n");

  TableWriter table(
      "E2: avg pages read per query vs density",
      {"density", "elements", "method", "pages", "results",
       "pages/Kresult", "time ms"});

  const Aabb domain(Vec3(0, 0, 0), Vec3(100, 100, 100));
  storage::DiskCostModel cost;

  for (size_t scale : {1, 2, 4, 8, 16}) {
    const size_t n = 25000 * scale;
    neuro::SegmentDataset data =
        neuro::UniformSegments(n, domain, 6.0f, 1.5f, 0.4f, 99);
    geom::ElementVec elements = data.Elements();
    auto queries = neuro::DataCenteredQueries(elements, 25.0f, 20, 3);

    // FLAT.
    storage::PageStore flat_store;
    auto flat = flat::FlatIndex::Build(elements, &flat_store);
    if (!flat.ok()) return 1;

    // Disk R-tree over the same elements.
    storage::PageStore rt_store;
    auto tree = rtree::RTree::BulkLoadStr(elements);
    if (!tree.ok()) return 1;
    auto paged = rtree::PagedRTree::Build(std::move(tree).value(), &rt_store);
    if (!paged.ok()) return 1;

    uint64_t flat_pages = 0, flat_results = 0, flat_us = 0;
    uint64_t rt_pages = 0, rt_us = 0;
    for (const auto& q : queries) {
      {
        SimClock clock;
        storage::BufferPool pool(&flat_store, 1 << 20, &clock, cost);
        flat::FlatQueryStats stats;
        std::vector<geom::ElementId> out;
        if (!flat->RangeQuery(q, &pool, &out, &stats).ok()) return 1;
        flat_pages += stats.data_pages_read;
        flat_results += stats.results;
        flat_us += clock.NowMicros();
      }
      {
        SimClock clock;
        storage::BufferPool pool(&rt_store, 1 << 20, &clock, cost);
        rtree::QueryStats stats;
        std::vector<geom::ElementId> out;
        if (!paged->RangeQuery(q, &out, &pool, &stats).ok()) return 1;
        rt_pages += stats.nodes_visited;
        rt_us += clock.NowMicros();
      }
    }
    const uint64_t q = queries.size();
    std::string density = std::to_string(scale) + "x";
    table.AddRow({density, TableWriter::Int(n), "FLAT",
                  TableWriter::Int(flat_pages / q),
                  TableWriter::Int(flat_results / q),
                  TableWriter::Num(1000.0 * flat_pages / flat_results, 1),
                  bench::UsToMs(flat_us / q)});
    table.AddRow({density, TableWriter::Int(n), "R-Tree",
                  TableWriter::Int(rt_pages / q),
                  TableWriter::Int(flat_results / q),
                  TableWriter::Num(1000.0 * rt_pages / flat_results, 1),
                  bench::UsToMs(rt_us / q)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: FLAT's pages/Kresult stays flat with density; the "
      "R-tree's grows (overlap pays per node, not per result).\n");
  return 0;
}
