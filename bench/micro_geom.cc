// M1 micro-benchmarks: geometry kernel hot paths (google-benchmark).
// These dominate the inner loops of every index and join.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "geom/aabb.h"
#include "geom/hilbert.h"
#include "geom/morton.h"
#include "geom/segment.h"

namespace {

using neurodb::Pcg32;
using neurodb::geom::Aabb;
using neurodb::geom::CapsuleDistance;
using neurodb::geom::HilbertEncode;
using neurodb::geom::MortonEncode;
using neurodb::geom::Segment;
using neurodb::geom::SquaredDistanceSegmentSegment;
using neurodb::geom::Vec3;

std::vector<Segment> RandomSegments(size_t n, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<Segment> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Vec3 a(static_cast<float>(rng.Uniform(0, 100)),
           static_cast<float>(rng.Uniform(0, 100)),
           static_cast<float>(rng.Uniform(0, 100)));
    Vec3 b = a + Vec3(static_cast<float>(rng.Uniform(-5, 5)),
                      static_cast<float>(rng.Uniform(-5, 5)),
                      static_cast<float>(rng.Uniform(-5, 5)));
    out.emplace_back(a, b, 0.4f);
  }
  return out;
}

void BM_SegmentSegmentDistance(benchmark::State& state) {
  auto segs = RandomSegments(1024, 1);
  size_t i = 0;
  for (auto _ : state) {
    const Segment& s = segs[i % segs.size()];
    const Segment& t = segs[(i * 7 + 13) % segs.size()];
    benchmark::DoNotOptimize(
        SquaredDistanceSegmentSegment(s.a, s.b, t.a, t.b));
    ++i;
  }
}
BENCHMARK(BM_SegmentSegmentDistance);

void BM_CapsuleDistance(benchmark::State& state) {
  auto segs = RandomSegments(1024, 2);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CapsuleDistance(segs[i % segs.size()],
                                             segs[(i * 11 + 5) % segs.size()]));
    ++i;
  }
}
BENCHMARK(BM_CapsuleDistance);

void BM_AabbIntersects(benchmark::State& state) {
  auto segs = RandomSegments(1024, 3);
  std::vector<Aabb> boxes;
  for (const auto& s : segs) boxes.push_back(s.Bounds());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        boxes[i % boxes.size()].Intersects(boxes[(i * 13 + 7) % boxes.size()]));
    ++i;
  }
}
BENCHMARK(BM_AabbIntersects);

void BM_HilbertEncode(benchmark::State& state) {
  Pcg32 rng(4);
  uint32_t x = rng.NextU32() & 0x1fffff;
  uint32_t y = rng.NextU32() & 0x1fffff;
  uint32_t z = rng.NextU32() & 0x1fffff;
  for (auto _ : state) {
    benchmark::DoNotOptimize(HilbertEncode(x, y, z));
    x = (x + 0x9e37) & 0x1fffff;
    y = (y + 0x79b9) & 0x1fffff;
    z = (z + 0x7f4a) & 0x1fffff;
  }
}
BENCHMARK(BM_HilbertEncode);

void BM_MortonEncode(benchmark::State& state) {
  Pcg32 rng(5);
  uint32_t x = rng.NextU32() & 0x1fffff;
  uint32_t y = rng.NextU32() & 0x1fffff;
  uint32_t z = rng.NextU32() & 0x1fffff;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MortonEncode(x, y, z));
    x = (x + 0x9e37) & 0x1fffff;
    y = (y + 0x79b9) & 0x1fffff;
    z = (z + 0x7f4a) & 0x1fffff;
  }
}
BENCHMARK(BM_MortonEncode);

}  // namespace

BENCHMARK_MAIN();
