// Ablation A2: TOUCH's partitioning-tree shape — internal fanout and data
// leaf size. Small fanout buckets probes deep (few comparisons, more node
// tests); large leaves cut tree overhead but grow per-bucket nested loops.

#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "touch/spatial_join.h"

using namespace neurodb;

int main() {
  std::printf("A2: TOUCH fanout / leaf-size ablation\n\n");

  neuro::Circuit circuit = bench::MakeColumn(150, 41);
  auto axons = circuit.FlattenSegments(neuro::NeuriteFilter::kAxons);
  auto dendrites = circuit.FlattenSegments(neuro::NeuriteFilter::kDendrites);
  touch::JoinInput a =
      touch::JoinInput::FromSegments(axons.segments, axons.ids);
  touch::JoinInput b =
      touch::JoinInput::FromSegments(dendrites.segments, dendrites.ids);
  std::printf("|A| = %zu, |B| = %zu, eps = 3\n\n", a.size(), b.size());

  TableWriter table("A2: TOUCH cost vs tree shape",
                    {"fanout", "leaf", "total ms", "assign ms", "probe ms",
                     "comparisons", "node tests", "filtered", "memory"});

  uint64_t reference_results = 0;
  for (size_t fanout : {4, 8, 16, 32, 64}) {
    for (size_t leaf : {32, 96, 256}) {
      touch::JoinOptions options;
      options.epsilon = 3.0f;
      options.touch_fanout = fanout;
      options.touch_leaf = leaf;
      auto result = touch::TouchJoin(a, b, options);
      if (!result.ok()) return 1;
      const auto& s = result->stats;
      if (reference_results == 0) {
        reference_results = s.results;
      } else if (s.results != reference_results) {
        std::fprintf(stderr, "TUNING CHANGED RESULTS — bug!\n");
        return 1;
      }
      table.AddRow({TableWriter::Int(fanout), TableWriter::Int(leaf),
                    TableWriter::Num(s.total_ns / 1e6, 1),
                    bench::Ms(s.assign_ns), bench::Ms(s.probe_ns),
                    TableWriter::Int(s.mbr_tests),
                    TableWriter::Int(s.node_tests),
                    TableWriter::Int(s.filtered),
                    TableWriter::Bytes(s.peak_bytes)});
    }
  }
  table.Print();
  std::printf("\nAll rows returned the identical %llu synapse pairs.\n",
              static_cast<unsigned long long>(reference_results));
  return 0;
}
