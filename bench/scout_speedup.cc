// Experiment E6 (paper Figure 6 + Section 3.1 claim): SCOUT speeds up
// branch-following walkthroughs "by a factor of up to 15x" and beats
// Hilbert and extrapolation prefetching; on a random walk no content-aware
// advantage exists (the adversarial control).

#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "flat/flat_index.h"
#include "neuro/workload.h"
#include "scout/session.h"

using namespace neurodb;

int main() {
  std::printf(
      "E6: walkthrough stall speedup by prefetching method (paper Fig 6)\n"
      "Think time 400 ms, cold page 5 ms, branch-following paths.\n\n");

  neuro::Circuit circuit = bench::MakeColumn(300, 3);
  neuro::SegmentDataset dataset = circuit.FlattenSegments();
  neuro::SegmentResolver resolver;
  resolver.AddDataset(dataset);

  storage::PageStore store;
  flat::FlatOptions flat_options;
  flat_options.elems_per_page = 32;
  auto index = flat::FlatIndex::Build(dataset.Elements(), &store, flat_options);
  if (!index.ok()) return 1;

  scout::SessionOptions session_options;
  session_options.think_time_us = 400'000;
  session_options.cost.page_read_micros = 5000;
  session_options.cost.page_hit_micros = 10;
  scout::WalkthroughSession session(&*index, &store, &resolver,
                                    session_options);

  struct Workload {
    std::string name;
    std::vector<geom::Aabb> queries;
  };
  std::vector<Workload> workloads;
  for (uint32_t gid : {0u, 5u, 9u}) {
    auto path = neuro::FollowBranchPath(circuit, gid, 18.0f, 1);
    if (!path.ok()) return 1;
    workloads.push_back(
        {"branch gid=" + std::to_string(gid), neuro::PathQueries(*path, 30.0f)});
  }
  workloads.push_back(
      {"random walk",
       neuro::PathQueries(neuro::RandomWalkPath(circuit.Bounds(), 25, 18.0f, 9),
                          35.0f)});

  TableWriter table("E6: total stall per walkthrough (lower is better)",
                    {"workload", "steps", "method", "stall ms", "speedup",
                     "steady ms", "steady speedup"});

  for (const auto& workload : workloads) {
    uint64_t none_stall = 0;
    uint64_t none_steady = 0;
    for (auto method : scout::AllPrefetchMethods()) {
      auto result = session.Run(workload.queries, method);
      if (!result.ok()) {
        std::fprintf(stderr, "run failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      // "Steady" excludes the cold first query, which no prefetcher can
      // help with — the paper's sequences are long, so their speedups are
      // steady-state numbers.
      uint64_t steady = result->total_stall_us - result->steps.front().stall_us;
      if (method == scout::PrefetchMethod::kNone) {
        none_stall = result->total_stall_us;
        none_steady = steady;
      }
      double speedup =
          result->total_stall_us == 0
              ? 0.0
              : static_cast<double>(none_stall) / result->total_stall_us;
      double steady_speedup =
          steady == 0 ? 0.0 : static_cast<double>(none_steady) / steady;
      table.AddRow({workload.name, TableWriter::Int(workload.queries.size()),
                    scout::PrefetchMethodName(method),
                    bench::UsToMs(result->total_stall_us),
                    TableWriter::Factor(speedup), bench::UsToMs(steady),
                    TableWriter::Factor(steady_speedup)});
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape: SCOUT's steady-state stall speedup reaches the "
      "order of the paper's 'up to 15x' on branch following, clearly above "
      "Hilbert/extrapolation; nobody wins on the random walk.\n");
  return 0;
}
