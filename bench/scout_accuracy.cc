// Experiment E7 (paper Figure 6 statistics panel): "how much data was
// prefetched in total, how much was correctly prefetched and how much data
// needed to be retrieved additionally" — per prefetching method.

#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "flat/flat_index.h"
#include "neuro/workload.h"
#include "scout/session.h"

using namespace neurodb;

int main() {
  std::printf(
      "E7: prefetch accuracy on a branch-following walkthrough (Fig 6)\n\n");

  neuro::Circuit circuit = bench::MakeColumn(300, 3);
  neuro::SegmentDataset dataset = circuit.FlattenSegments();
  neuro::SegmentResolver resolver;
  resolver.AddDataset(dataset);

  storage::PageStore store;
  flat::FlatOptions flat_options;
  flat_options.elems_per_page = 32;
  auto index = flat::FlatIndex::Build(dataset.Elements(), &store, flat_options);
  if (!index.ok()) return 1;

  scout::SessionOptions session_options;
  session_options.think_time_us = 400'000;
  session_options.cost.page_read_micros = 5000;
  scout::WalkthroughSession session(&*index, &store, &resolver,
                                    session_options);

  auto path = neuro::FollowBranchPath(circuit, 2, 18.0f, 1);
  if (!path.ok()) return 1;
  auto queries = neuro::PathQueries(*path, 30.0f);

  TableWriter table(
      "E7: prefetched total / correctly prefetched / additionally fetched",
      {"method", "prefetched", "used", "precision", "missed (demand)",
       "hit rate"});

  for (auto method : scout::AllPrefetchMethods()) {
    auto result = session.Run(queries, method);
    if (!result.ok()) return 1;
    table.AddRow({scout::PrefetchMethodName(method),
                  TableWriter::Int(result->prefetch_issued),
                  TableWriter::Int(result->prefetch_used),
                  TableWriter::Num(100.0 * result->PrefetchPrecision(), 1) + "%",
                  TableWriter::Int(result->pages_missed),
                  TableWriter::Num(100.0 * result->HitRate(), 1) + "%"});
  }
  table.Print();
  std::printf(
      "\nExpected shape: SCOUT prefetches the most *useful* pages (highest "
      "used & hit rate); Hilbert prefetches blindly along the layout.\n");
  return 0;
}
