// Ablation A1: FLAT crawl-page size and the rescue completeness pass.
// Page size trades seed-tree size and neighborhood fanout against wasted
// scanning; rescue adds memory-resident seed-tree work but no data-page
// I/O on connected data.

#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "flat/flat_index.h"
#include "neuro/workload.h"

using namespace neurodb;
using geom::Aabb;
using geom::Vec3;

int main() {
  std::printf("A1: FLAT page-size and rescue ablation\n\n");

  const Aabb domain(Vec3(0, 0, 0), Vec3(120, 120, 120));
  neuro::SegmentDataset data =
      neuro::UniformSegments(150000, domain, 6.0f, 1.5f, 0.4f, 31);
  geom::ElementVec elements = data.Elements();

  TableWriter table("A1: per-query work vs page size (20 queries, side 25)",
                    {"elems/page", "rescue", "data pages", "seed nodes",
                     "rescue nodes", "extra seeds", "scanned", "metadata"});

  for (size_t page_size : {32, 64, 128, 253, 512}) {
    for (bool rescue : {true, false}) {
      storage::PageStore store;
      flat::FlatOptions options;
      options.elems_per_page = page_size;
      options.rescue = rescue;
      auto index = flat::FlatIndex::Build(elements, &store, options);
      if (!index.ok()) return 1;

      auto queries = neuro::DataCenteredQueries(elements, 25.0f, 20, 13);
      storage::BufferPool pool(&store, 1 << 20);
      flat::FlatQueryStats total;
      for (const auto& q : queries) {
        flat::FlatQueryStats stats;
        std::vector<geom::ElementId> out;
        if (!index->RangeQuery(q, &pool, &out, &stats).ok()) return 1;
        total.data_pages_read += stats.data_pages_read;
        total.seed_nodes_visited += stats.seed_nodes_visited;
        total.rescue_nodes_visited += stats.rescue_nodes_visited;
        total.extra_seeds += stats.extra_seeds;
        total.elements_scanned += stats.elements_scanned;
        pool.EvictAll();
      }
      const uint64_t q = queries.size();
      table.AddRow({TableWriter::Int(page_size), rescue ? "on" : "off",
                    TableWriter::Int(total.data_pages_read / q),
                    TableWriter::Int(total.seed_nodes_visited / q),
                    TableWriter::Int(total.rescue_nodes_visited / q),
                    TableWriter::Int(total.extra_seeds),
                    TableWriter::Int(total.elements_scanned / q),
                    TableWriter::Bytes(index->MetadataBytes())});
    }
  }
  table.Print();
  std::printf(
      "\nReading: bigger pages -> fewer page reads but more wasted scanning "
      "and coarser prefetch granularity; rescue costs only memory-resident "
      "seed-tree visits (same data pages, zero extra seeds on dense "
      "data).\n");
  return 0;
}
