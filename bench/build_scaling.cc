// Experiment E11 (paper Section 1): the tools "allow to build, analyze and
// simulate bigger and more detailed models" — index construction must scale
// near-linearly. Measures FLAT and R-tree build cost and footprint vs N.

#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "flat/flat_index.h"
#include "neuro/workload.h"
#include "rtree/rtree.h"

using namespace neurodb;
using geom::Aabb;
using geom::Vec3;

int main() {
  std::printf("E11: index build scalability\n\n");

  TableWriter table("E11: build time and footprint vs N",
                    {"N", "structure", "build ms", "ms/100K elems",
                     "pages / nodes", "in-memory bytes"});

  const Aabb domain(Vec3(0, 0, 0), Vec3(200, 200, 200));
  for (size_t n : {50000, 100000, 200000, 400000}) {
    neuro::SegmentDataset data =
        neuro::UniformSegments(n, domain, 6.0f, 1.5f, 0.4f, 77);
    geom::ElementVec elements = data.Elements();

    {
      storage::PageStore store;
      Timer timer;
      auto index = flat::FlatIndex::Build(elements, &store);
      double ms = timer.ElapsedMillis();
      if (!index.ok()) return 1;
      table.AddRow({TableWriter::Int(n), "FLAT",
                    TableWriter::Num(ms, 1),
                    TableWriter::Num(ms * 100000.0 / n, 1),
                    TableWriter::Int(index->NumPages()),
                    TableWriter::Bytes(index->MetadataBytes())});
    }
    {
      Timer timer;
      auto tree = rtree::RTree::BulkLoadStr(elements);
      double ms = timer.ElapsedMillis();
      if (!tree.ok()) return 1;
      table.AddRow({TableWriter::Int(n), "R-Tree (STR)",
                    TableWriter::Num(ms, 1),
                    TableWriter::Num(ms * 100000.0 / n, 1),
                    TableWriter::Int(tree->NumNodes()),
                    TableWriter::Bytes(tree->MemoryBytes())});
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape: ms/100K stays roughly constant for both builds "
      "(sort-dominated, near-linear).\n");
  return 0;
}
