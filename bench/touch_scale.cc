// Experiment E9 (paper Section 4.1): join scalability with dataset size on
// clustered (neuron-like) data. Nested loop is only run at the smallest
// size (its O(n^2) cost is the paper's point, not news).

#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "neuro/workload.h"
#include "touch/spatial_join.h"

using namespace neurodb;
using geom::Aabb;
using geom::Vec3;

int main() {
  std::printf(
      "E9: join scalability, clustered segment clouds, eps = 2 um\n\n");

  TableWriter table("E9: total join time vs dataset size",
                    {"N per side", "method", "total ms", "comparisons",
                     "memory", "results"});

  const Aabb domain(Vec3(0, 0, 0), Vec3(150, 150, 150));
  touch::JoinOptions options;
  options.epsilon = 2.0f;

  for (size_t n : {10000, 30000, 100000}) {
    auto da = neuro::ClusteredSegments(n, domain, 24, 6.0f, 5.0f, 0.4f, 5);
    auto db = neuro::ClusteredSegments(n, domain, 24, 6.0f, 5.0f, 0.4f, 6);
    touch::JoinInput a = touch::JoinInput::FromSegments(da.segments, da.ids);
    touch::JoinInput b = touch::JoinInput::FromSegments(db.segments, db.ids);

    for (auto method : touch::AllJoinMethods()) {
      if (method == touch::JoinMethod::kNestedLoop && n > 10000) continue;
      auto result = touch::RunJoin(method, a, b, options);
      if (!result.ok()) return 1;
      const auto& s = result->stats;
      table.AddRow({TableWriter::Int(n), touch::JoinMethodName(method),
                    TableWriter::Num(s.total_ns / 1e6, 1),
                    TableWriter::Int(s.mbr_tests + s.node_tests),
                    TableWriter::Bytes(s.peak_bytes),
                    TableWriter::Int(s.results)});
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape: TOUCH's advantage widens with size; PBSM suffers "
      "replication on clustered data; S3 pays node-pair explosion.\n");
  return 0;
}
