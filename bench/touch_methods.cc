// Experiment E8 (paper Figure 7 + Section 4.1 claims): TOUCH vs PBSM, S3,
// plane sweep and nested loop on the synapse-discovery join (axon segments
// x dendrite segments). The demo showed live charts of "time spent on the
// join, memory footprint as well as the number of pairwise comparisons".
//
// Claims under reproduction: TOUCH ~1 order of magnitude faster than PBSM
// and ~2 orders faster than S3/sweep, with a memory footprint comparable to
// the frugal baselines (no replication).

#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "touch/spatial_join.h"

using namespace neurodb;

int main() {
  std::printf(
      "E8: synapse-discovery join, all methods (paper Fig 7)\n"
      "Axons x dendrites of a 200-neuron column, epsilon = 3 um.\n\n");

  neuro::Circuit circuit = bench::MakeColumn(200, 17);
  auto axons = circuit.FlattenSegments(neuro::NeuriteFilter::kAxons);
  auto dendrites = circuit.FlattenSegments(neuro::NeuriteFilter::kDendrites);
  touch::JoinInput a =
      touch::JoinInput::FromSegments(axons.segments, axons.ids);
  touch::JoinInput b =
      touch::JoinInput::FromSegments(dendrites.segments, dendrites.ids);
  std::printf("|A| = %zu axon segments, |B| = %zu dendrite segments\n\n",
              a.size(), b.size());

  touch::JoinOptions options;
  options.epsilon = 3.0f;

  TableWriter table("E8: join cost by method",
                    {"method", "total ms", "vs TOUCH", "build ms", "probe ms",
                     "comparisons", "node tests", "memory", "synapses"});

  double touch_ms = 0.0;
  for (auto method : touch::AllJoinMethods()) {
    auto result = touch::RunJoin(method, a, b, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", touch::JoinMethodName(method),
                   result.status().ToString().c_str());
      return 1;
    }
    const auto& s = result->stats;
    double total_ms = s.total_ns / 1e6;
    if (method == touch::JoinMethod::kTouch) touch_ms = total_ms;
    table.AddRow({touch::JoinMethodName(method), TableWriter::Num(total_ms, 1),
                  TableWriter::Factor(total_ms / touch_ms),
                  bench::Ms(s.build_ns), bench::Ms(s.probe_ns),
                  TableWriter::Int(s.mbr_tests), TableWriter::Int(s.node_tests),
                  TableWriter::Bytes(s.peak_bytes),
                  TableWriter::Int(s.results)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: TOUCH fastest; PBSM within ~an order of magnitude; "
      "S3 and the sweep one-two orders behind; nested loop worst. All "
      "methods report the identical synapse count.\n");
  return 0;
}
