// Cold start: open-and-first-query latency, memory vs disk store.
//
// A durable engine's startup has three moving parts: loading the
// checkpointed base (base.ndb), rebuilding every backend over it, and
// replaying whatever WAL tail the last run left behind. This bench
// measures wall-clock from "data directory on disk" to "first range query
// answered" across four configurations:
//
//   memory            rebuild from an in-memory element list (the old,
//                     non-durable path — the floor every other row pays
//                     real I/O on top of)
//   disk              QueryEngine::Open on a cleanly checkpointed
//                     directory (empty WAL)
//   disk+wal          the same directory with a warm WAL tail of N update
//                     batches (unclean shutdown — replay cost included)
//   disk (backends=mem) Open with durability.disk_backends=false: base +
//                     WAL on disk but backends rebuilt on memory stores
//
// Emits BENCH_cold_start.json (cold_start_smoke runs the shrunken sweep).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "engine/query_engine.h"
#include "neuro/workload.h"

using namespace neurodb;
using geom::Aabb;
using geom::Vec3;

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - t0)
             .count() /
         1e3;
}

// One cold-start measurement: returns false on any engine error.
struct ColdStartRow {
  double open_ms = 0.0;        // construct/Open + load/replay
  double first_query_ms = 0.0; // first kAll warm-path range query
  uint64_t replayed = 0;
  uint64_t bytes_read = 0;
  // Device read *calls* against base.ndb during Open: checkpoint streams
  // land physically contiguous (sequential allocation), so the recovery
  // scan coalesces them — this column is where the readahead win shows.
  uint64_t base_reads = 0;
  uint64_t fsyncs = 0;
  uint64_t results = 0;
};

bool FirstQuery(engine::QueryEngine* db, const Aabb& box, ColdStartRow* row) {
  auto t0 = std::chrono::steady_clock::now();
  engine::RangeRequest request;
  request.box = box;
  request.backend = engine::BackendChoice::kAll;
  request.cache = engine::CachePolicy::kWarm;
  auto report = db->Execute(request);
  if (!report.ok()) {
    std::fprintf(stderr, "first query failed: %s\n",
                 report.status().ToString().c_str());
    return false;
  }
  row->first_query_ms = MsSince(t0);
  row->results = report->results;
  return true;
}

// Seed `dir` with a checkpointed engine over `elements`, then optionally
// leave `wal_batches` un-checkpointed update batches in the WAL (the warm
// tail an unclean shutdown leaves behind).
bool SeedDataDir(const std::string& dir, const geom::ElementVec& elements,
                 size_t wal_batches) {
  engine::EngineOptions options;
  options.durability.dir = dir;
  engine::QueryEngine db(options);
  if (!db.LoadElements(elements).ok()) return false;
  geom::ElementId next_id = 1000000;
  for (size_t i = 0; i < wal_batches; ++i) {
    float f = static_cast<float>(i % 50);
    engine::UpdateRequest request;
    request.kind = engine::UpdateKind::kInsert;
    request.id = next_id++;
    request.bounds = Aabb(Vec3(f, f, 0), Vec3(f + 2, f + 2, 2));
    if (!db.ApplyUpdates(std::span<const engine::UpdateRequest>(&request, 1))
             .ok()) {
      return false;
    }
  }
  return true;  // destructor leaves the WAL tail in place — no checkpoint
}

}  // namespace

int main() {
  const bool smoke = std::getenv("NEURODB_BENCH_SMOKE") != nullptr;
  const size_t neurons = smoke ? 8 : 24;
  const size_t wal_batches = smoke ? 16 : 200;

  std::printf(
      "Cold start: open-and-first-query latency, memory vs disk store\n"
      "Cortical column, %zu neurons; warm WAL tail of %zu batches.\n\n",
      neurons, wal_batches);

  neuro::Circuit circuit =
      bench::MakeColumn(static_cast<uint32_t>(neurons), 42);
  geom::ElementVec elements = circuit.FlattenSegments().Elements();
  std::vector<Aabb> probes =
      neuro::DataCenteredQueries(elements, 40.0f, 1, 4242);
  const Aabb probe = probes.front();

  const std::string root = "bench_cold_start_data";
  std::filesystem::remove_all(root);

  TableWriter table("cold start (open + first query)",
                    {"config", "open_ms", "first_q_ms", "replayed",
                     "bytes_read", "base_reads", "fsyncs", "results"});
  bench::JsonEmitter json("cold_start");
  bool ok = true;

  struct Config {
    const char* label;
    bool durable;        // false = plain in-memory LoadElements
    size_t wal_batches;  // warm WAL tail length
    bool disk_backends;
  };
  const Config kConfigs[] = {
      {"memory", false, 0, false},
      {"disk", true, 0, true},
      {"disk+wal", true, wal_batches, true},
      {"disk (backends=mem)", true, wal_batches, false},
  };

  for (const Config& config : kConfigs) {
    ColdStartRow row;
    if (!config.durable) {
      auto t0 = std::chrono::steady_clock::now();
      engine::QueryEngine db;
      ok = db.LoadElements(elements).ok();
      row.open_ms = MsSince(t0);
      if (ok) ok = FirstQuery(&db, probe, &row);
    } else {
      const std::string dir = root + "/" + std::to_string(config.wal_batches) +
                              (config.disk_backends ? "_disk" : "_mem");
      // Seeding cost is not part of the measurement.
      if (!std::filesystem::exists(dir)) {
        ok = SeedDataDir(dir, elements, config.wal_batches);
      }
      if (ok) {
        engine::EngineOptions options;
        options.durability.disk_backends = config.disk_backends;
        engine::RecoveryReport report;
        auto t0 = std::chrono::steady_clock::now();
        auto db = engine::QueryEngine::Open(dir, options, &report);
        row.open_ms = MsSince(t0);
        ok = db.ok();
        if (!ok) {
          std::fprintf(stderr, "Open failed: %s\n",
                       db.status().ToString().c_str());
        } else {
          row.replayed = report.replayed_batches;
          row.base_reads = (*db)->durability()->base().read_calls();
          storage::IoStats io = (*db)->IoTotals();
          ok = FirstQuery(db->get(), probe, &row);
          storage::IoStats after = (*db)->IoTotals();
          row.bytes_read = after.bytes_read;
          row.fsyncs = after.fsyncs;
          (void)io;
        }
      }
    }
    if (!ok) break;

    char open_buf[32], q_buf[32];
    std::snprintf(open_buf, sizeof(open_buf), "%.2f", row.open_ms);
    std::snprintf(q_buf, sizeof(q_buf), "%.2f", row.first_query_ms);
    table.AddRow({config.label, open_buf, q_buf,
                  std::to_string(row.replayed),
                  std::to_string(row.bytes_read),
                  std::to_string(row.base_reads), std::to_string(row.fsyncs),
                  std::to_string(row.results)});

    bench::JsonRow json_row;
    json_row.Str("config", config.label)
        .Int("elements", elements.size())
        .Int("wal_batches", config.wal_batches)
        .Num("open_ms", row.open_ms)
        .Num("first_query_ms", row.first_query_ms)
        .Int("replayed_batches", row.replayed)
        .Int("bytes_read", row.bytes_read)
        .Int("base_read_calls", row.base_reads)
        .Int("fsyncs", row.fsyncs)
        .Int("results", row.results);
    json.AddRow(json_row);
  }

  std::filesystem::remove_all(root);
  if (!ok) return 1;
  table.Print();
  if (!json.Write()) return 1;
  return 0;
}
