// kNN across the engine backends: FLAT's expanding-ring crawl against the
// paged R-tree's best-first traversal, the grid's cell rings and the
// domain-sharded fan-out. Three datasets: the cortical column (the paper's
// exhibit), a Gaussian-clustered cloud and a power-law density cloud — the
// skewed distributions where the R-tree's adaptive hierarchy beats FLAT's
// ring crawl and the grid's uniform cells, and exactly what the cost-based
// advisor must discriminate. After measuring, the bench asks
// QueryEngine::Advise for its pick on each dataset and records it next to
// the measured winner; under NEURODB_BENCH_SMOKE=1 the skewed-dataset gates
// are enforced (R-tree beats FLAT on pages AND latency; the advisor picks
// the measured winner).

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "engine/query_engine.h"
#include "neuro/workload.h"

using namespace neurodb;
using geom::Aabb;
using geom::Vec3;

namespace {

struct Config {
  std::string name;
  geom::ElementVec elements;
  bool skewed = false;  // gated dataset
};

struct Measured {
  double pages = 0;
  double time_us = 0;
};

}  // namespace

int main() {
  const bool smoke = std::getenv("NEURODB_BENCH_SMOKE") != nullptr;
  const size_t gate_k = 8;

  std::printf(
      "kNN backend comparison (cold pools, per-query cost model)\n"
      "column / clustered / power-law datasets; 24 data-centered query "
      "points per row.\n\n");

  const Aabb domain(Vec3(0, 0, 0), Vec3(400, 400, 400));
  const size_t cloud_n = smoke ? 40000 : 80000;
  std::vector<Config> configs;
  {
    neuro::Circuit circuit = bench::MakeColumn(20, 42);
    configs.push_back(
        {"column", circuit.FlattenSegments().Elements(), false});
  }
  configs.push_back(
      {"clustered",
       neuro::ClusteredElements(cloud_n, domain, /*clusters=*/32,
                                /*sigma=*/9.0f, /*elem_side=*/2.0f,
                                /*seed=*/21),
       true});
  configs.push_back(
      {"powerlaw",
       neuro::PowerLawElements(cloud_n, domain, /*clusters=*/48,
                               /*alpha=*/1.1, /*sigma_max=*/40.0f,
                               /*elem_side=*/2.0f, /*seed=*/22),
       true});

  bench::JsonEmitter emitter("knn_backends");
  std::string metrics_json;
  int failures = 0;

  for (auto& config : configs) {
    engine::QueryEngine db;
    if (!db.LoadElements(config.elements).ok()) {
      std::fprintf(stderr, "%s: LoadElements failed\n", config.name.c_str());
      return 1;
    }
    auto anchors =
        neuro::DataCenteredQueries(config.elements, 1.0f, 24, 7);

    TableWriter table(config.name + ": avg per query, by backend and k",
                      {"k", "method", "pages", "scanned", "time ms"});
    // Measured pages/latency at the gate k, and summed over the whole k
    // sweep (the engine's pages/query counters hold the sweep average —
    // the advisor's measured ranking sees exactly that).
    std::map<engine::BackendChoice, Measured> at_gate_k;
    std::map<engine::BackendChoice, Measured> sweep;

    for (size_t k : {size_t{1}, size_t{8}, size_t{64}, size_t{512}}) {
      for (auto choice :
           {engine::BackendChoice::kFlat, engine::BackendChoice::kRTree,
            engine::BackendChoice::kGrid, engine::BackendChoice::kSharded}) {
        uint64_t pages = 0, scanned = 0, time_us = 0;
        std::string method;
        for (const auto& anchor : anchors) {
          engine::KnnRequest request;
          request.point = anchor.Center();
          request.k = k;
          request.backend = choice;
          request.cache = engine::CachePolicy::kCold;
          auto report = db.Execute(request);
          if (!report.ok()) {
            std::fprintf(stderr, "knn failed: %s\n",
                         report.status().ToString().c_str());
            return 1;
          }
          method = report->rows[0].method;
          pages += report->rows[0].stats.pages_read;
          scanned += report->rows[0].stats.elements_scanned;
          time_us += report->rows[0].stats.time_us;
        }
        double n = static_cast<double>(anchors.size());
        if (k == gate_k) at_gate_k[choice] = {pages / n, time_us / n};
        sweep[choice].pages += pages / n;
        sweep[choice].time_us += time_us / n;
        table.AddRow({TableWriter::Int(k), method,
                      TableWriter::Num(pages / n, 1),
                      TableWriter::Num(scanned / n, 0),
                      bench::UsToMs(static_cast<uint64_t>(time_us / n))});
        emitter.AddRow(bench::JsonRow()
                           .Str("dataset", config.name)
                           .Int("k", k)
                           .Str("method", method)
                           .Num("avg_pages", pages / n)
                           .Num("avg_scanned", scanned / n)
                           .Num("avg_time_us", time_us / n));
      }
    }
    table.Print();

    // The advisor's pick for this dataset, from the structures the
    // backends actually built (model-only; measured counters are reported
    // alongside in the rationale).
    engine::WorkloadProfile profile;
    profile.range_weight = 0.0;
    profile.knn_weight = 1.0;
    profile.knn_k = gate_k;
    profile.data_centered = 1.0;  // every anchor sits on an element
    auto decision = db.Advise(profile);
    if (!decision.ok()) {
      std::fprintf(stderr, "%s: Advise failed: %s\n", config.name.c_str(),
                   decision.status().ToString().c_str());
      return 1;
    }
    engine::BackendChoice measured_winner = engine::BackendChoice::kFlat;
    double best_pages = -1.0;
    for (const auto& [choice, m] : sweep) {
      if (best_pages < 0 || m.pages < best_pages) {
        best_pages = m.pages;
        measured_winner = choice;
      }
    }
    const bool advisor_right = decision->backend == measured_winner;
    std::printf("%s advisor pick: %s (measured winner by pages over the k "
                "sweep: %.1f summed pages) — %s\n  %s\n\n",
                config.name.c_str(), decision->backend_name.c_str(),
                best_pages, advisor_right ? "agrees" : "DISAGREES",
                decision->rationale.c_str());
    emitter.AddRow(bench::JsonRow()
                       .Str("dataset", config.name)
                       .Str("advisor_pick", decision->backend_name)
                       .Int("advisor_agrees", advisor_right ? 1 : 0)
                       .Num("measured_best_pages", best_pages));

    if (!config.skewed) continue;
    // Gates on the skewed datasets: the R-tree must beat FLAT on pages AND
    // latency, and the advisor must pick the measured winner.
    const Measured& flat = at_gate_k[engine::BackendChoice::kFlat];
    const Measured& rtree = at_gate_k[engine::BackendChoice::kRTree];
    if (!(rtree.pages < flat.pages && rtree.time_us < flat.time_us)) {
      std::fprintf(stderr,
                   "GATE[%s]: R-Tree (%.1f pages, %.0f us) does not beat "
                   "FLAT (%.1f pages, %.0f us) at k=%zu\n",
                   config.name.c_str(), rtree.pages, rtree.time_us,
                   flat.pages, flat.time_us, gate_k);
      ++failures;
    }
    if (!advisor_right) {
      std::fprintf(stderr, "GATE[%s]: advisor picked %s, measured winner "
                   "differs\n",
                   config.name.c_str(), decision->backend_name.c_str());
      ++failures;
    }
    // Engine-side view of the run (the last dataset's snapshot is
    // archived with the rows — every query above fed backend.* metrics).
    metrics_json = db.MetricsSnapshot().ToJson();
  }

  emitter.SetMetricsJson(metrics_json);
  emitter.Write();
  if (failures > 0) {
    std::fprintf(stderr, "%d gate(s) failed\n", failures);
    return 1;
  }
  std::printf("all gates passed\n");
  return 0;
}
