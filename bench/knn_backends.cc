// kNN across the three engine backends: FLAT's expanding-ring crawl against
// the paged R-tree's best-first traversal and the grid's exhaustive scan.
// The interesting shape: the R-tree reads ~k-proportional pages, FLAT reads
// the pages of the covering ring, the grid always reads everything — which
// is why the grid is the parity voice, not a contender.

#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "engine/query_engine.h"
#include "neuro/workload.h"

using namespace neurodb;
using geom::Vec3;

int main() {
  std::printf(
      "kNN backend comparison (cold pools, per-query cost model)\n"
      "Cortical column, 20 neurons; 24 data-centered query points/row.\n\n");

  neuro::Circuit circuit = bench::MakeColumn(20, 42);
  engine::QueryEngine db;
  if (!db.LoadCircuit(circuit).ok()) {
    std::fprintf(stderr, "LoadCircuit failed\n");
    return 1;
  }
  geom::ElementVec elements = circuit.FlattenSegments().Elements();
  auto anchors = neuro::DataCenteredQueries(elements, 1.0f, 24, 7);

  TableWriter table("avg per query, by backend and k",
                    {"k", "method", "pages", "scanned", "time ms"});
  bench::JsonEmitter emitter("knn_backends");

  for (size_t k : {1, 8, 64, 512}) {
    for (auto choice :
         {engine::BackendChoice::kFlat, engine::BackendChoice::kRTree,
          engine::BackendChoice::kGrid}) {
      uint64_t pages = 0, scanned = 0, time_us = 0;
      std::string method;
      for (const auto& anchor : anchors) {
        engine::KnnRequest request;
        request.point = anchor.Center();
        request.k = k;
        request.backend = choice;
        request.cache = engine::CachePolicy::kCold;
        auto report = db.Execute(request);
        if (!report.ok()) {
          std::fprintf(stderr, "knn failed: %s\n",
                       report.status().ToString().c_str());
          return 1;
        }
        method = report->rows[0].method;
        pages += report->rows[0].stats.pages_read;
        scanned += report->rows[0].stats.elements_scanned;
        time_us += report->rows[0].stats.time_us;
      }
      double n = static_cast<double>(anchors.size());
      table.AddRow({TableWriter::Int(k), method,
                    TableWriter::Num(pages / n, 1),
                    TableWriter::Num(scanned / n, 0),
                    bench::UsToMs(static_cast<uint64_t>(time_us / n))});
      emitter.AddRow(bench::JsonRow()
                         .Int("k", k)
                         .Str("method", method)
                         .Num("avg_pages", pages / n)
                         .Num("avg_scanned", scanned / n)
                         .Num("avg_time_us", time_us / n));
    }
  }
  table.Print();
  // The engine-side view of the same run: every query above fed the
  // engine.query.knn.* / backend.* metrics, archived with the rows.
  emitter.SetMetricsJson(db.MetricsSnapshot().ToJson());
  emitter.Write();
  return 0;
}
