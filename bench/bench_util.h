// NeuroDB — shared helpers for the benchmark harnesses.
//
// Each bench binary reproduces one exhibit/claim of the paper (see
// DESIGN.md Section 6 and EXPERIMENTS.md) and prints its rows through
// common/table.h. Everything is seeded and sized to run in seconds on a
// laptop while preserving the paper's effect shapes. Benches that track a
// performance trajectory additionally emit a machine-readable
// BENCH_<name>.json next to the binary via JsonEmitter, so CI runs can be
// diffed over time.

#ifndef NEURODB_BENCH_BENCH_UTIL_H_
#define NEURODB_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "neuro/circuit.h"
#include "neuro/circuit_generator.h"

namespace neurodb {
namespace bench {

/// Standard microcircuit used by the exhibit benches: a cortical column
/// with strongly non-uniform layer densities (the demo's dense/sparse
/// regions). ~`neurons` cells, ~1-2k segments each.
inline neuro::Circuit MakeColumn(uint32_t neurons, uint64_t seed) {
  neuro::CircuitParams params;
  params.num_neurons = neurons;
  params.seed = seed;
  // Layer 2 dense, layer 5 sparse — mirrors neocortex counts.
  params.layer_weights = {0.05f, 0.40f, 0.25f, 0.20f, 0.10f};
  auto circuit = neuro::CircuitGenerator(params).Generate();
  if (!circuit.ok()) {
    std::fprintf(stderr, "circuit generation failed: %s\n",
                 circuit.status().ToString().c_str());
    std::abort();
  }
  return std::move(circuit).value();
}

/// Nanoseconds rendered as milliseconds with 2 decimals.
inline std::string Ms(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", ns / 1e6);
  return buf;
}

/// Simulated microseconds rendered as milliseconds.
inline std::string UsToMs(uint64_t us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", us / 1e3);
  return buf;
}

/// One row of a JSON benchmark record: flat key → number/string fields in
/// insertion order.
class JsonRow {
 public:
  JsonRow& Num(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.emplace_back(key, buf);
    return *this;
  }
  JsonRow& Int(const std::string& key, uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonRow& Str(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, '"' + Escaped(value) + '"');
    return *this;
  }

  std::string Render() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      out += '"' + Escaped(fields_[i].first) + "\": " + fields_[i].second;
    }
    out += "}";
    return out;
  }

 private:
  static std::string Escaped(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  /// (key, pre-rendered JSON value) pairs.
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Collects rows and writes BENCH_<name>.json into the working directory:
///   {"bench": "<name>", "generated_at": "<ISO-8601 UTC>", "threads": N,
///    "rows": [{...}, ...], "metrics": {...}}
/// The perf-trajectory format CI archives after each run. Every file is
/// stamped with the wall-clock time and hardware thread count so archived
/// trajectories are self-describing; benches that run a QueryEngine can
/// attach its end-of-run metrics snapshot via SetMetricsJson.
class JsonEmitter {
 public:
  explicit JsonEmitter(std::string name) : name_(std::move(name)) {}

  void AddRow(const JsonRow& row) { rows_.push_back(row.Render()); }

  /// Attach a pre-rendered JSON object (typically
  /// `engine.MetricsSnapshot().ToJson()`) written verbatim under the
  /// "metrics" key. Empty string: key omitted.
  void SetMetricsJson(std::string json) { metrics_json_ = std::move(json); }

  /// Write the file; returns false (with a note on stderr) on I/O failure.
  bool Write() const {
    std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonEmitter: cannot open %s\n", path.c_str());
      return false;
    }
    char stamp[32] = "unknown";
    const std::time_t now = std::time(nullptr);
    if (std::tm* utc = std::gmtime(&now)) {
      std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", utc);
    }
    std::fprintf(f,
                 "{\"bench\": \"%s\", \"generated_at\": \"%s\", "
                 "\"threads\": %u, \"rows\": [\n",
                 name_.c_str(), stamp, std::thread::hardware_concurrency());
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "  %s%s\n", rows_[i].c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "]%s", metrics_json_.empty() ? "" : ",\n\"metrics\": ");
    if (!metrics_json_.empty()) std::fputs(metrics_json_.c_str(), f);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
    return true;
  }

 private:
  std::string name_;
  std::vector<std::string> rows_;
  std::string metrics_json_;
};

}  // namespace bench
}  // namespace neurodb

#endif  // NEURODB_BENCH_BENCH_UTIL_H_
