// NeuroDB — shared helpers for the benchmark harnesses.
//
// Each bench binary reproduces one exhibit/claim of the paper (see
// DESIGN.md Section 6 and EXPERIMENTS.md) and prints its rows through
// common/table.h. Everything is seeded and sized to run in seconds on a
// laptop while preserving the paper's effect shapes.

#ifndef NEURODB_BENCH_BENCH_UTIL_H_
#define NEURODB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "neuro/circuit.h"
#include "neuro/circuit_generator.h"

namespace neurodb {
namespace bench {

/// Standard microcircuit used by the exhibit benches: a cortical column
/// with strongly non-uniform layer densities (the demo's dense/sparse
/// regions). ~`neurons` cells, ~1-2k segments each.
inline neuro::Circuit MakeColumn(uint32_t neurons, uint64_t seed) {
  neuro::CircuitParams params;
  params.num_neurons = neurons;
  params.seed = seed;
  // Layer 2 dense, layer 5 sparse — mirrors neocortex counts.
  params.layer_weights = {0.05f, 0.40f, 0.25f, 0.20f, 0.10f};
  auto circuit = neuro::CircuitGenerator(params).Generate();
  if (!circuit.ok()) {
    std::fprintf(stderr, "circuit generation failed: %s\n",
                 circuit.status().ToString().c_str());
    std::abort();
  }
  return std::move(circuit).value();
}

/// Nanoseconds rendered as milliseconds with 2 decimals.
inline std::string Ms(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", ns / 1e6);
  return buf;
}

/// Simulated microseconds rendered as milliseconds.
inline std::string UsToMs(uint64_t us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", us / 1e3);
  return buf;
}

}  // namespace bench
}  // namespace neurodb

#endif  // NEURODB_BENCH_BENCH_UTIL_H_
