// M1 micro-benchmarks: R-tree operations (google-benchmark).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "rtree/rtree.h"

namespace {

using neurodb::Pcg32;
using neurodb::geom::Aabb;
using neurodb::geom::ElementId;
using neurodb::geom::ElementVec;
using neurodb::geom::Vec3;
using neurodb::rtree::RTree;
using neurodb::rtree::RTreeOptions;

ElementVec RandomElements(size_t n, uint64_t seed) {
  Pcg32 rng(seed);
  ElementVec out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Vec3 c(static_cast<float>(rng.Uniform(0, 100)),
           static_cast<float>(rng.Uniform(0, 100)),
           static_cast<float>(rng.Uniform(0, 100)));
    out.emplace_back(i, Aabb::Cube(c, 1.5f));
  }
  return out;
}

void BM_BulkLoadStr(benchmark::State& state) {
  ElementVec elements = RandomElements(state.range(0), 1);
  for (auto _ : state) {
    auto tree = RTree::BulkLoadStr(elements);
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BulkLoadStr)->Arg(10000)->Arg(100000);

void BM_RangeQuery(benchmark::State& state) {
  ElementVec elements = RandomElements(100000, 2);
  auto tree = RTree::BulkLoadStr(elements);
  Pcg32 rng(3);
  std::vector<ElementId> out;
  const float side = static_cast<float>(state.range(0));
  for (auto _ : state) {
    out.clear();
    Aabb box = Aabb::Cube(Vec3(static_cast<float>(rng.Uniform(10, 90)),
                               static_cast<float>(rng.Uniform(10, 90)),
                               static_cast<float>(rng.Uniform(10, 90))),
                          side);
    tree->RangeQuery(box, &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_RangeQuery)->Arg(5)->Arg(20)->Arg(40);

void BM_Knn(benchmark::State& state) {
  ElementVec elements = RandomElements(100000, 4);
  auto tree = RTree::BulkLoadStr(elements);
  Pcg32 rng(5);
  for (auto _ : state) {
    Vec3 p(static_cast<float>(rng.Uniform(0, 100)),
           static_cast<float>(rng.Uniform(0, 100)),
           static_cast<float>(rng.Uniform(0, 100)));
    benchmark::DoNotOptimize(tree->Knn(p, state.range(0)));
  }
}
BENCHMARK(BM_Knn)->Arg(1)->Arg(16)->Arg(128);

void BM_InsertRStar(benchmark::State& state) {
  ElementVec elements = RandomElements(20000, 6);
  for (auto _ : state) {
    RTree tree{RTreeOptions{}};
    for (const auto& e : elements) {
      benchmark::DoNotOptimize(tree.Insert(e));
    }
  }
  state.SetItemsProcessed(state.iterations() * elements.size());
}
BENCHMARK(BM_InsertRStar)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
