// R-tree construction-variant sweep: Guttman-quadratic insertion vs R*
// insertion (with and without forced reinsertion) vs STR / Hilbert bulk
// loading across a fill-factor grid, on a uniform cloud (where data-oblivious
// tiling shines) and a clustered cloud (where adaptive splits shine — STR
// slabs crossing empty inter-cluster space inflate leaf MBRs). Reports build
// time, structure (nodes, height, leaf fill, leaf overlap volume) and the
// average nodes visited by a data-centered range query; emits
// BENCH_micro_rtree.json.
//
// Doubles as the `micro_rtree_smoke` ctest gate (NEURODB_BENCH_SMOKE=1):
//   * every variant returns the same total result count per dataset,
//   * bulk-loaded leaf fill reaches the configured fill-factor target,
//   * on the uniform cloud, bulk-loaded leaf overlap stays at or below the
//     naive quadratic-insertion bound.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "neuro/workload.h"
#include "rtree/rtree.h"

using namespace neurodb;
using geom::Aabb;
using geom::Vec3;
using rtree::BuildAlgorithm;
using rtree::RTree;
using rtree::RTreeOptions;

namespace {

struct Variant {
  std::string name;
  RTreeOptions options;
  bool is_bulk = false;
};

struct Row {
  Variant variant;
  std::string dataset;
  double build_ms = 0;
  size_t nodes = 0;
  int height = 0;
  double leaf_fill = 0;
  double leaf_overlap = 0;
  double avg_query_nodes = 0;
  uint64_t results = 0;
};

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

geom::ElementVec UniformElements(size_t n, const Aabb& domain, float elem_side,
                                 uint64_t seed) {
  Pcg32 rng(seed);
  geom::ElementVec out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Vec3 c(static_cast<float>(rng.Uniform(domain.min.x, domain.max.x)),
           static_cast<float>(rng.Uniform(domain.min.y, domain.max.y)),
           static_cast<float>(rng.Uniform(domain.min.z, domain.max.z)));
    out.emplace_back(static_cast<geom::ElementId>(i),
                     Aabb::Cube(c, elem_side));
  }
  return out;
}

}  // namespace

int main() {
  const bool smoke = std::getenv("NEURODB_BENCH_SMOKE") != nullptr;
  const size_t n = smoke ? 4000 : 40000;
  const size_t num_queries = smoke ? 64 : 256;

  const Aabb domain(Vec3(0, 0, 0), Vec3(200, 200, 200));
  struct Dataset {
    std::string name;
    geom::ElementVec elements;
  };
  std::vector<Dataset> datasets;
  datasets.push_back({"uniform", UniformElements(n, domain, 1.5f, 11)});
  datasets.push_back(
      {"clustered",
       neuro::ClusteredElements(n, domain, /*clusters=*/24, /*sigma=*/6.0f,
                                /*elem_side=*/1.5f, /*seed=*/11)});

  std::printf(
      "R-tree build-variant sweep: %zu elements per dataset, %zu queries\n\n",
      n, num_queries);

  std::vector<Variant> variants;
  {
    Variant v{"quad-insert", RTreeOptions(), false};
    v.options.split = rtree::SplitAlgorithm::kQuadratic;
    v.options.build = BuildAlgorithm::kDynamicInsert;
    v.options.reinsert_factor = 0.0;
    variants.push_back(v);
  }
  for (double reinsert : {0.0, 0.15, 0.3}) {
    Variant v{reinsert == 0.0 ? "rstar-insert"
                              : "rstar-reinsert-" + std::to_string(
                                    static_cast<int>(reinsert * 100)),
              RTreeOptions(), false};
    v.options.split = rtree::SplitAlgorithm::kRStar;
    v.options.build = BuildAlgorithm::kDynamicInsert;
    v.options.reinsert_factor = reinsert;
    variants.push_back(v);
  }
  for (double ff : {0.7, 0.85, 1.0}) {
    for (BuildAlgorithm build :
         {BuildAlgorithm::kStrBulk, BuildAlgorithm::kHilbertBulk}) {
      Variant v{(build == BuildAlgorithm::kStrBulk ? "str-bulk-" : "hilbert-bulk-") +
                    std::to_string(static_cast<int>(ff * 100)),
                RTreeOptions(), true};
      v.options.build = build;
      v.options.fill_factor = ff;
      variants.push_back(v);
    }
  }

  bench::JsonEmitter emitter("micro_rtree");
  int failures = 0;

  for (const Dataset& dataset : datasets) {
    auto queries =
        neuro::DataCenteredQueries(dataset.elements, 8.0f, num_queries, 13);
    TableWriter table(dataset.name + " cloud (leaf overlap in um^3)",
                      {"variant", "build ms", "nodes", "height", "leaf fill",
                       "leaf overlap", "query nodes"});
    std::vector<Row> rows;

    for (const Variant& variant : variants) {
      auto t0 = std::chrono::steady_clock::now();
      auto tree = RTree::Build(dataset.elements, variant.options);
      if (!tree.ok()) {
        std::fprintf(stderr, "%s: build failed: %s\n", variant.name.c_str(),
                     tree.status().ToString().c_str());
        return 1;
      }
      Row row;
      row.variant = variant;
      row.dataset = dataset.name;
      row.build_ms = MsSince(t0);
      row.nodes = tree->NumNodes();
      row.height = tree->Height();
      auto profile = tree->LevelProfile();
      if (!profile.empty()) {
        row.leaf_fill = profile.front().mean_fill;
        row.leaf_overlap = profile.front().overlap_volume;
      }
      uint64_t nodes_visited = 0;
      std::vector<geom::ElementId> out;
      for (const Aabb& q : queries) {
        rtree::QueryStats stats;
        out.clear();
        tree->RangeQuery(q, &out, &stats);
        nodes_visited += stats.nodes_visited;
        row.results += out.size();
      }
      row.avg_query_nodes = static_cast<double>(nodes_visited) /
                            static_cast<double>(queries.size());

      table.AddRow({variant.name, TableWriter::Num(row.build_ms, 2),
                    TableWriter::Int(row.nodes), TableWriter::Int(row.height),
                    TableWriter::Num(row.leaf_fill, 3),
                    TableWriter::Num(row.leaf_overlap, 0),
                    TableWriter::Num(row.avg_query_nodes, 1)});
      emitter.AddRow(
          bench::JsonRow()
              .Str("dataset", dataset.name)
              .Str("variant", variant.name)
              .Num("fill_factor", variant.options.fill_factor)
              .Num("reinsert_factor", variant.options.reinsert_factor)
              .Num("build_ms", row.build_ms)
              .Int("nodes", row.nodes)
              .Int("height", static_cast<uint64_t>(row.height))
              .Num("leaf_fill", row.leaf_fill)
              .Num("leaf_overlap", row.leaf_overlap)
              .Num("avg_query_nodes", row.avg_query_nodes)
              .Int("results", row.results));
      rows.push_back(row);
    }
    table.Print();

    // Gates (cheap — enforced on every run, not just smoke).
    const Row& naive = rows.front();
    for (const Row& row : rows) {
      if (row.results != naive.results) {
        std::fprintf(stderr,
                     "GATE[%s]: %s returned %llu results, %s returned %llu\n",
                     dataset.name.c_str(), row.variant.name.c_str(),
                     static_cast<unsigned long long>(row.results),
                     naive.variant.name.c_str(),
                     static_cast<unsigned long long>(naive.results));
        ++failures;
      }
      if (!row.variant.is_bulk) continue;
      const double target = row.variant.options.fill_factor * 0.9;
      if (row.leaf_fill < target) {
        std::fprintf(stderr, "GATE[%s]: %s leaf fill %.3f below target %.3f\n",
                     dataset.name.c_str(), row.variant.name.c_str(),
                     row.leaf_fill, target);
        ++failures;
      }
      // Bulk tiling beats naive insertion on overlap where it is
      // data-appropriate: on the uniform cloud. On clusters, slabs that
      // cross empty inter-cluster space legitimately overlap more. Hilbert
      // runs carry a documented slack — curve segments trade tile
      // disjointness for sort simplicity and are known to overlap more
      // than STR tiles on uniform data (Leutenegger et al., ICDE'97).
      const bool hilbert =
          row.variant.options.build == BuildAlgorithm::kHilbertBulk;
      const double bound = naive.leaf_overlap * (hilbert ? 16.0 : 1.0);
      if (dataset.name == "uniform" && row.leaf_overlap > bound) {
        std::fprintf(stderr,
                     "GATE[%s]: %s leaf overlap %.0f exceeds naive bound "
                     "%.0f\n",
                     dataset.name.c_str(), row.variant.name.c_str(),
                     row.leaf_overlap, bound);
        ++failures;
      }
    }
  }
  emitter.Write();

  if (failures > 0) {
    std::fprintf(stderr, "%d gate(s) failed\n", failures);
    return 1;
  }
  std::printf("all gates passed\n");
  return 0;
}
