// Update mix: update-fraction × backend sweep over the base+delta path.
//
// Growing circuits turn every read-only index into a base+delta merge:
// queries answer from the immutable built layout plus the in-memory
// DeltaIndex (tombstones filtered, inserts appended). This bench quantifies
// what that merge costs. For each backend and each update fraction f, the
// same fixed set of data-centered range queries runs interleaved with a
// seeded insert/erase/move stream sized so updates are a fraction f of all
// operations; the headline metrics are demand pages fetched and simulated
// I/O time per query, compared against the pure-base run (f = 0) of the
// same backend as `pages_ratio` / `time_ratio`.
//
// The claim the smoke gate enforces (update_mix_smoke, NEURODB_BENCH_SMOKE):
// at update fractions <= 10%, delta-merged queries stay within 2x of the
// pure-base query cost — mutation is an overlay, not a rebuild, and the
// overlay is memory-resident (inserts add zero page I/O; erases can only
// shrink page visits after compaction). Emits BENCH_update_mix.json.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "engine/query_engine.h"
#include "neuro/workload.h"

using namespace neurodb;
using geom::Aabb;
using geom::ElementId;
using geom::Vec3;

namespace {

struct MixRow {
  double pages_per_query = 0.0;
  double sim_us_per_query = 0.0;
  double wall_ms = 0.0;
  uint64_t updates = 0;
  uint64_t delta_size = 0;
  /// Engine result-cache churn over the run (each query also runs once
  /// through CachePolicy::kDelta, so updates invalidate live entries).
  uint64_t cache_hits = 0;
  uint64_t cache_invalidated = 0;
  /// Device I/O attributed to the gated queries (storage::IoStats summed
  /// from RangeReport::io). All zeros on in-memory stores; set
  /// NEURODB_BENCH_DISK=1 to run every engine on disk-backed stores.
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t fsyncs = 0;
};

struct BackendUnderTest {
  const char* label;
  engine::BackendChoice choice;
};

/// Run `queries` through a fresh engine over `circuit`, interleaving a
/// seeded update stream so updates make up `update_fraction` of all
/// operations. Returns per-query averages of the *query* cost only.
bool RunMix(const neuro::Circuit& circuit, engine::BackendChoice choice,
            const std::vector<Aabb>& queries, double update_fraction,
            uint64_t seed, const std::string& data_dir, MixRow* row) {
  engine::EngineOptions options;
  options.flat.elems_per_page = 64;
  options.grid.elems_per_page = 64;
  options.sharded.inner.elems_per_page = 64;
  options.durability.dir = data_dir;  // empty = in-memory (the default)
  engine::QueryEngine db(options);
  if (!db.LoadCircuit(circuit).ok()) return false;

  geom::ElementVec elements = circuit.FlattenSegments().Elements();
  std::vector<ElementId> live_ids;
  live_ids.reserve(elements.size());
  ElementId next_id = 0;
  for (const auto& e : elements) {
    live_ids.push_back(e.id);
    next_id = std::max(next_id, e.id);
  }
  ++next_id;

  // updates / (updates + queries) == update_fraction.
  const size_t total_updates =
      update_fraction >= 1.0
          ? 0
          : static_cast<size_t>(static_cast<double>(queries.size()) *
                                update_fraction / (1.0 - update_fraction));
  // The seeded mutation stream: element-scale cubes, insert/erase/move.
  neuro::MixedWorkloadOptions update_options;
  update_options.update_fraction = 1.0;
  auto updates = neuro::MixedWorkload(db.domain(), elements, update_options,
                                      total_updates, seed);

  uint64_t pages = 0;
  uint64_t sim_us = 0;
  size_t update_cursor = 0;
  size_t applied = 0;
  auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < queries.size(); ++i) {
    // Spread the update stream evenly between the queries.
    size_t updates_due = queries.empty()
                             ? 0
                             : total_updates * (i + 1) / queries.size();
    for (; update_cursor < updates_due; ++update_cursor) {
      const neuro::WorkloadQuery& u = updates[update_cursor];
      engine::UpdateRequest request;
      if (u.update_op == neuro::WorkloadUpdateOp::kInsert ||
          live_ids.empty()) {
        request.kind = engine::UpdateKind::kInsert;
        request.id = next_id++;
        request.bounds = u.box;
        live_ids.push_back(request.id);
      } else {
        size_t idx = static_cast<size_t>(u.update_rank % live_ids.size());
        request.id = live_ids[idx];
        if (u.update_op == neuro::WorkloadUpdateOp::kErase) {
          request.kind = engine::UpdateKind::kErase;
          live_ids[idx] = live_ids.back();
          live_ids.pop_back();
        } else {
          request.kind = engine::UpdateKind::kMove;
          request.bounds = u.box;
        }
      }
      auto report = db.ApplyUpdates(
          std::span<const engine::UpdateRequest>(&request, 1));
      if (!report.ok()) {
        std::fprintf(stderr, "ApplyUpdates failed: %s\n",
                     report.status().ToString().c_str());
        return false;
      }
      ++applied;
    }

    engine::RangeRequest request;
    request.box = queries[i];
    request.backend = choice;
    request.cache = engine::CachePolicy::kWarm;
    auto report = db.Execute(request);
    if (!report.ok()) {
      std::fprintf(stderr, "Execute failed: %s\n",
                   report.status().ToString().c_str());
      return false;
    }
    for (const auto& r : report->rows) {
      pages += r.stats.pages_read;
      sim_us += r.stats.time_us;
    }
    row->bytes_read += report->io.bytes_read;
    row->bytes_written += report->io.bytes_written;
    row->fsyncs += report->io.fsyncs;

    // The same box once more through the result-cache delta path — not
    // part of the gated cost metric, but it keeps live cache entries the
    // update stream then invalidates, so the run reports real churn.
    engine::RangeRequest delta_request = request;
    delta_request.cache = engine::CachePolicy::kDelta;
    if (!db.Execute(delta_request).ok()) return false;
  }
  auto t1 = std::chrono::steady_clock::now();

  row->pages_per_query =
      queries.empty() ? 0.0
                      : static_cast<double>(pages) /
                            static_cast<double>(queries.size());
  row->sim_us_per_query =
      queries.empty() ? 0.0
                      : static_cast<double>(sim_us) /
                            static_cast<double>(queries.size());
  row->wall_ms =
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() /
      1e3;
  row->updates = applied;
  row->delta_size = db.DeltaSize();
  if (db.result_cache() != nullptr) {
    row->cache_hits = db.result_cache()->stats().hits;
    row->cache_invalidated = db.result_cache()->stats().invalidated_boxes;
  }
  return true;
}

}  // namespace

int main() {
  const bool smoke = std::getenv("NEURODB_BENCH_SMOKE") != nullptr;
  const size_t neurons = smoke ? 8 : 20;
  const size_t num_queries = smoke ? 24 : 120;
  const uint64_t seed = 4242;

  std::printf(
      "Update mix: update-fraction x backend sweep (base+delta merge)\n"
      "Cortical column, %zu neurons; %zu data-centered range queries per\n"
      "cell, seeded insert/erase/move stream interleaved.\n\n",
      neurons, num_queries);

  neuro::Circuit circuit =
      bench::MakeColumn(static_cast<uint32_t>(neurons), 42);
  geom::ElementVec elements = circuit.FlattenSegments().Elements();
  std::vector<Aabb> queries =
      neuro::DataCenteredQueries(elements, 40.0f, num_queries, seed + 1);

  const BackendUnderTest kBackends[] = {
      {"FLAT", engine::BackendChoice::kFlat},
      {"R-Tree", engine::BackendChoice::kRTree},
      {"Grid", engine::BackendChoice::kGrid},
      {"Sharded", engine::BackendChoice::kSharded},
  };
  const double kFractions[] = {0.0, 0.05, 0.10, 0.25};

  TableWriter table("update mix (base+delta merge cost)",
                    {"backend", "upd_frac", "updates", "delta", "pages/q",
                     "sim_us/q", "pages_ratio", "time_ratio", "invalidated"});
  bench::JsonEmitter json("update_mix");
  bool claim_holds = true;

  // NEURODB_BENCH_DISK=1 puts every engine on disk-backed stores (one data
  // directory per cell, removed afterwards) so the io columns are real.
  const bool on_disk = std::getenv("NEURODB_BENCH_DISK") != nullptr;
  const std::string disk_root = "bench_update_mix_data";
  size_t cell = 0;

  for (const BackendUnderTest& backend : kBackends) {
    MixRow baseline;
    for (double fraction : kFractions) {
      MixRow row;
      std::string data_dir =
          on_disk ? disk_root + "/cell" + std::to_string(cell++) : "";
      bool ok =
          RunMix(circuit, backend.choice, queries, fraction, seed, data_dir,
                 &row);
      if (on_disk) std::filesystem::remove_all(disk_root);
      if (!ok) return 1;
      if (fraction == 0.0) baseline = row;
      double pages_ratio = baseline.pages_per_query > 0.0
                               ? row.pages_per_query / baseline.pages_per_query
                               : 1.0;
      double time_ratio = baseline.sim_us_per_query > 0.0
                              ? row.sim_us_per_query /
                                    baseline.sim_us_per_query
                              : 1.0;

      char frac_buf[16], pages_buf[32], sim_buf[32], pr_buf[16], tr_buf[16];
      std::snprintf(frac_buf, sizeof(frac_buf), "%.2f", fraction);
      std::snprintf(pages_buf, sizeof(pages_buf), "%.1f",
                    row.pages_per_query);
      std::snprintf(sim_buf, sizeof(sim_buf), "%.1f", row.sim_us_per_query);
      std::snprintf(pr_buf, sizeof(pr_buf), "%.2f", pages_ratio);
      std::snprintf(tr_buf, sizeof(tr_buf), "%.2f", time_ratio);
      table.AddRow({backend.label, frac_buf, std::to_string(row.updates),
                    std::to_string(row.delta_size), pages_buf, sim_buf,
                    pr_buf, tr_buf, std::to_string(row.cache_invalidated)});

      bench::JsonRow json_row;
      json_row.Str("backend", backend.label)
          .Num("update_fraction", fraction)
          .Int("queries", num_queries)
          .Int("updates", row.updates)
          .Int("delta_size", row.delta_size)
          .Num("pages_per_query", row.pages_per_query)
          .Num("sim_us_per_query", row.sim_us_per_query)
          .Num("wall_ms", row.wall_ms)
          .Num("pages_ratio", pages_ratio)
          .Num("time_ratio", time_ratio)
          .Int("cache_hits", row.cache_hits)
          .Int("cache_invalidated", row.cache_invalidated)
          .Int("bytes_read", row.bytes_read)
          .Int("bytes_written", row.bytes_written)
          .Int("fsyncs", row.fsyncs);
      json.AddRow(json_row);

      // The gate: the delta merge must stay within 2x of pure-base cost
      // while updates are <= 10% of the operation mix.
      if (fraction > 0.0 && fraction <= 0.10 + 1e-9) {
        if (pages_ratio > 2.0 || time_ratio > 2.0) {
          std::fprintf(stderr,
                       "CLAIM FAILED: %s at update fraction %.2f: "
                       "pages_ratio=%.2f time_ratio=%.2f (> 2x)\n",
                       backend.label, fraction, pages_ratio, time_ratio);
          claim_holds = false;
        }
      }
    }
  }

  table.Print();
  std::printf(
      "\nClaim (<= 2x pure-base query cost at <= 10%% update fraction): "
      "%s\n",
      claim_holds ? "HOLDS" : "FAILED");
  if (!json.Write()) return 1;
  return claim_holds ? 0 : 2;
}
