// Experiment E1 (paper Figures 2-3): FLAT vs R-tree range queries in dense
// and sparse regions of a cortical column. Reports the statistics the demo
// GUI showed live: disk pages retrieved, modeled time, results — and the
// R-tree's per-level node fetches (Figure 4's overlap illustration).

#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "core/toolkit.h"
#include "neuro/workload.h"

using namespace neurodb;

int main() {
  std::printf(
      "E1: FLAT vs R-tree, dense vs sparse regions (paper Figs 2-4)\n"
      "Model: 300-neuron layered column; cold buffer pool per query.\n\n");

  neuro::Circuit circuit = bench::MakeColumn(300, 1);
  core::ToolkitOptions options;
  core::NeuroToolkit tk(options);
  if (!tk.LoadCircuit(circuit).ok()) return 1;

  geom::Aabb domain = tk.domain();
  struct Region {
    const char* name;
    float y_lo;
    float y_hi;
  };
  // Layer bands: layer 2 (dense) vs layer 5 (sparse).
  float h = 500.0f / 5;
  Region regions[] = {{"dense (L2)", 500 - 2 * h, 500 - h},
                      {"sparse (L5)", 0, h}};

  TableWriter table("E1: pages retrieved & modeled time per query",
                    {"region", "side um", "method", "pages", "time ms",
                     "results", "scanned"});

  for (const Region& region : regions) {
    for (float side : {20.0f, 40.0f, 80.0f}) {
      auto queries =
          neuro::LayerQueries(domain, region.y_lo, region.y_hi, side, 12, 7);
      uint64_t flat_pages = 0, flat_us = 0, flat_results = 0, flat_scan = 0;
      uint64_t rt_pages = 0, rt_us = 0, rt_scan = 0;
      std::vector<uint64_t> per_level;
      for (const auto& q : queries) {
        auto report = tk.CompareRangeQuery(q);
        if (!report.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       report.status().ToString().c_str());
          return 1;
        }
        flat_pages += report->flat.pages_read;
        flat_us += report->flat.time_us;
        flat_results += report->flat.results;
        flat_scan += report->flat.elements_scanned;
        rt_pages += report->rtree.pages_read;
        rt_us += report->rtree.time_us;
        rt_scan += report->rtree.elements_scanned;
        if (report->rtree.nodes_per_level.size() > per_level.size()) {
          per_level.resize(report->rtree.nodes_per_level.size(), 0);
        }
        for (size_t l = 0; l < report->rtree.nodes_per_level.size(); ++l) {
          per_level[l] += report->rtree.nodes_per_level[l];
        }
      }
      const uint64_t n = queries.size();
      table.AddRow({region.name, TableWriter::Num(side, 0), "FLAT",
                    TableWriter::Int(flat_pages / n),
                    bench::UsToMs(flat_us / n),
                    TableWriter::Int(flat_results / n),
                    TableWriter::Int(flat_scan / n)});
      table.AddRow({region.name, TableWriter::Num(side, 0), "R-Tree",
                    TableWriter::Int(rt_pages / n), bench::UsToMs(rt_us / n),
                    TableWriter::Int(flat_results / n),
                    TableWriter::Int(rt_scan / n)});
      if (side == 40.0f) {
        std::string levels;
        for (size_t l = per_level.size(); l-- > 0;) {
          levels += "L" + std::to_string(l) + "=" +
                    std::to_string(per_level[l] / n) + " ";
        }
        std::printf("  R-tree nodes/level (%s, side 40): %s\n", region.name,
                    levels.c_str());
      }
    }
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\nExpected shape (paper Sec 2): R-tree reads multiply in the dense "
      "region while FLAT stays proportional to the result.\n");
  return 0;
}
