// Experiment E1 (paper Figures 2-3): FLAT vs R-tree range queries in dense
// and sparse regions of a cortical column, run through the engine's batch
// API: each (region, side) cell is one ExecuteBatch of cold RangeRequests
// against every backend. Reports the statistics the demo GUI showed live:
// disk pages retrieved, modeled time, results — and the R-tree's per-level
// node fetches (Figure 4's overlap illustration).

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "engine/query_engine.h"
#include "neuro/workload.h"

using namespace neurodb;

namespace {

struct MethodAgg {
  uint64_t pages = 0;
  uint64_t us = 0;
  uint64_t results = 0;
  uint64_t scanned = 0;
  std::vector<uint64_t> per_level;
};

}  // namespace

int main() {
  std::printf(
      "E1: FLAT vs R-tree, dense vs sparse regions (paper Figs 2-4)\n"
      "Model: 300-neuron layered column; cold buffer pool per query.\n\n");

  neuro::Circuit circuit = bench::MakeColumn(300, 1);
  engine::QueryEngine db;
  if (!db.LoadCircuit(circuit).ok()) return 1;

  geom::Aabb domain = db.domain();
  struct Region {
    const char* name;
    float y_lo;
    float y_hi;
  };
  // Layer bands: layer 2 (dense) vs layer 5 (sparse).
  float h = 500.0f / 5;
  Region regions[] = {{"dense (L2)", 500 - 2 * h, 500 - h},
                      {"sparse (L5)", 0, h}};

  TableWriter table("E1: pages retrieved & modeled time per query",
                    {"region", "side um", "method", "pages", "time ms",
                     "results", "scanned"});

  for (const Region& region : regions) {
    for (float side : {20.0f, 40.0f, 80.0f}) {
      auto queries =
          neuro::LayerQueries(domain, region.y_lo, region.y_hi, side, 12, 7);
      std::vector<engine::RangeRequest> batch;
      batch.reserve(queries.size());
      for (const auto& q : queries) {
        engine::RangeRequest request;
        request.box = q;
        request.backend = engine::BackendChoice::kAll;
        request.cache = engine::CachePolicy::kCold;
        batch.push_back(request);
      }
      auto result = db.ExecuteBatch(batch);
      if (!result.ok()) {
        std::fprintf(stderr, "batch failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }

      // Per-method aggregation over the batch's per-query rows.
      std::map<std::string, MethodAgg> methods;
      for (const auto& report : result->reports) {
        if (!report.results_match) {
          std::fprintf(stderr, "FLAT and R-tree results disagree\n");
          return 1;
        }
        for (const auto& row : report.rows) {
          MethodAgg& agg = methods[row.method];
          agg.pages += row.stats.pages_read;
          agg.us += row.stats.time_us;
          agg.results += row.stats.results;
          agg.scanned += row.stats.elements_scanned;
          if (row.stats.nodes_per_level.size() > agg.per_level.size()) {
            agg.per_level.resize(row.stats.nodes_per_level.size(), 0);
          }
          for (size_t l = 0; l < row.stats.nodes_per_level.size(); ++l) {
            agg.per_level[l] += row.stats.nodes_per_level[l];
          }
        }
      }

      const uint64_t n = queries.size();
      for (const char* method : {"FLAT", "R-Tree"}) {
        const MethodAgg& agg = methods[method];
        table.AddRow({region.name, TableWriter::Num(side, 0), method,
                      TableWriter::Int(agg.pages / n),
                      bench::UsToMs(agg.us / n),
                      TableWriter::Int(agg.results / n),
                      TableWriter::Int(agg.scanned / n)});
        if (side == 40.0f && !agg.per_level.empty()) {
          std::string levels;
          for (size_t l = agg.per_level.size(); l-- > 0;) {
            levels += "L" + std::to_string(l) + "=" +
                      std::to_string(agg.per_level[l] / n) + " ";
          }
          std::printf("  %s nodes/level (%s, side 40): %s\n", method,
                      region.name, levels.c_str());
        }
      }
    }
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\nExpected shape (paper Sec 2): R-tree reads multiply in the dense "
      "region while FLAT stays proportional to the result.\n");
  return 0;
}
