// Concurrent ExecuteBatch across threads × shards: the scaling surface of
// the new execution subsystem. A seeded mixed Range/Knn workload runs as
// one batch against the sharded backend while the worker count and shard
// count sweep; rows report real wall time, total modeled I/O work and the
// simulated critical path (slowest lane). The interesting shapes: the
// critical path (what a user would wait for) falls as lanes split the
// batch; the modeled *total* grows with lanes on this warm workload —
// lanes do not share each other's cache, the classic parallelism-vs-reuse
// trade; and more shards mean fewer pages read per query (shard pruning
// narrows the scanned stores). Emits BENCH_batch_parallel.json for the
// perf trajectory.

#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "engine/query_engine.h"
#include "neuro/workload.h"

using namespace neurodb;
using geom::Vec3;

namespace {

std::vector<engine::QueryRequest> MakeBatch(const engine::QueryEngine& db,
                                            const geom::ElementVec& elements,
                                            size_t n) {
  neuro::MixedWorkloadOptions options;
  options.knn_fraction = 0.3;
  std::vector<neuro::WorkloadQuery> workload =
      neuro::MixedWorkload(db.domain(), elements, options, n, 97);
  std::vector<engine::QueryRequest> batch;
  batch.reserve(n);
  for (const neuro::WorkloadQuery& query : workload) {
    if (query.kind == neuro::QueryKind::kRange) {
      engine::RangeRequest request;
      request.box = query.box;
      request.backend = engine::BackendChoice::kSharded;
      request.cache = engine::CachePolicy::kWarm;
      batch.emplace_back(request);
    } else {
      engine::KnnRequest request;
      request.point = query.point;
      request.k = query.k;
      request.backend = engine::BackendChoice::kSharded;
      request.cache = engine::CachePolicy::kWarm;
      batch.emplace_back(request);
    }
  }
  return batch;
}

}  // namespace

int main() {
  std::printf(
      "Concurrent ExecuteBatch: threads x shards sweep\n"
      "Cortical column, 20 neurons; 400 mixed Range/Knn queries per cell,\n"
      "warm pools, all requests against the sharded backend.\n\n");

  neuro::Circuit circuit = bench::MakeColumn(20, 42);

  TableWriter table("one batch per (threads, shards) configuration",
                    {"threads", "shards", "lanes", "wall ms", "sim total ms",
                     "critical ms", "pages"});
  bench::JsonEmitter json("batch_parallel");

  for (size_t shards : {1, 2, 4, 8}) {
    for (size_t threads : {1, 2, 4, 8}) {
      engine::EngineOptions options;
      options.num_threads = threads;
      options.sharded.num_shards = shards;
      engine::QueryEngine db(options);
      if (!db.LoadCircuit(circuit).ok()) {
        std::fprintf(stderr, "LoadCircuit failed\n");
        return 1;
      }
      geom::ElementVec elements = circuit.FlattenSegments().Elements();
      std::vector<engine::QueryRequest> batch = MakeBatch(db, elements, 400);

      Timer timer;
      auto result =
          db.ExecuteBatch(std::span<const engine::QueryRequest>(batch));
      uint64_t wall_ns = timer.ElapsedNanos();
      if (!result.ok()) {
        std::fprintf(stderr, "batch failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }

      table.AddRow({TableWriter::Int(threads), TableWriter::Int(shards),
                    TableWriter::Int(result->aggregate.lanes),
                    bench::Ms(wall_ns),
                    bench::UsToMs(result->aggregate.time_us),
                    bench::UsToMs(result->aggregate.critical_path_us),
                    TableWriter::Int(result->aggregate.pages_read)});

      bench::JsonRow row;
      row.Int("threads", threads)
          .Int("shards", shards)
          .Int("lanes", result->aggregate.lanes)
          .Int("queries", batch.size())
          .Num("wall_ms", wall_ns / 1e6)
          .Num("sim_total_ms", result->aggregate.time_us / 1e3)
          .Num("sim_critical_ms", result->aggregate.critical_path_us / 1e3)
          .Int("pages_read", result->aggregate.pages_read)
          .Int("results", result->aggregate.results);
      json.AddRow(row);
    }
  }
  table.Print();
  return json.Write() ? 0 : 1;
}
