// Ablation A3: SCOUT's skeleton connectivity threshold tau. Too small
// fragments branches (losing the followed structure between queries); too
// large merges unrelated branches (diluting the candidate pruning).

#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "flat/flat_index.h"
#include "neuro/workload.h"
#include "scout/session.h"

using namespace neurodb;

int main() {
  std::printf("A3: SCOUT connectivity threshold (tau) ablation\n\n");

  neuro::Circuit circuit = bench::MakeColumn(120, 3);
  neuro::SegmentDataset dataset = circuit.FlattenSegments();
  neuro::SegmentResolver resolver;
  resolver.AddDataset(dataset);

  storage::PageStore store;
  flat::FlatOptions flat_options;
  flat_options.elems_per_page = 128;
  auto index = flat::FlatIndex::Build(dataset.Elements(), &store, flat_options);
  if (!index.ok()) return 1;

  auto path = neuro::FollowBranchPath(circuit, 4, 12.0f, 1);
  if (!path.ok()) return 1;
  auto queries = neuro::PathQueries(*path, 35.0f);

  TableWriter table("A3: walkthrough quality vs tau",
                    {"tau um", "stall ms", "prefetched", "used", "precision",
                     "hit rate", "final candidates"});

  for (float tau : {0.1f, 0.5f, 1.0f, 2.0f, 5.0f, 15.0f}) {
    scout::SessionOptions options;
    options.think_time_us = 400'000;
    options.cost.page_read_micros = 5000;
    options.scout.structure.connect_tol = tau;
    scout::WalkthroughSession session(&*index, &store, &resolver, options);
    auto result = session.Run(queries, scout::PrefetchMethod::kScout);
    if (!result.ok()) return 1;
    table.AddRow(
        {TableWriter::Num(tau, 1), bench::UsToMs(result->total_stall_us),
         TableWriter::Int(result->prefetch_issued),
         TableWriter::Int(result->prefetch_used),
         TableWriter::Num(100.0 * result->PrefetchPrecision(), 1) + "%",
         TableWriter::Num(100.0 * result->HitRate(), 1) + "%",
         TableWriter::Int(result->steps.back().candidates)});
  }
  table.Print();
  std::printf(
      "\nReading: mid-range tau tracks the followed branch best; tiny tau "
      "fragments it, huge tau merges the neighborhood into one blob.\n");
  return 0;
}
