// Session result cache: overlap fraction × cache size sweep.
//
// A linear exploration path crosses the column with box side fixed and the
// step length set to side * (1 - overlap), so consecutive boxes share the
// requested volume fraction. Each configuration replays the same path
// through an engine::Session — once cold (cache_boxes = 0) and once per
// result-cache capacity — with the extrapolation prefetcher, whose
// predicted next box the cached session evaluates into the cache during
// think time (results, not just pages). The headline metric is demand page
// *fetches* per step — pool hits + misses, the same quantity
// RangeStats::pages_read counts ("disk pages retrieved", paper Figure 3):
// the session's LRU pool already converts overlap into cheap hits, but
// only the result cache removes the fetches altogether — covered volume is
// answered from cached results without touching the pool. Rows also report
// demand misses separately, stall per step and the mean delta coverage;
// `speedup` is cold-fetches / cached-fetches at the same overlap. The
// headline claim: at >= 50% overlap the cached session makes >= 2x fewer
// page fetches per step. Emits BENCH_session_cache.json for the perf
// trajectory; the CI smoke registration runs a shrunken sweep
// (NEURODB_BENCH_SMOKE=1).

#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "common/table.h"
#include "engine/query_engine.h"
#include "engine/session.h"

using namespace neurodb;
using geom::Aabb;
using geom::Vec3;

namespace {

/// A straight path of `steps` boxes along the domain's x extent.
std::vector<Aabb> LinearPath(const Aabb& domain, float side, float step,
                             size_t steps) {
  Vec3 center = domain.Center();
  float x0 = domain.min.x + side;
  std::vector<Aabb> path;
  path.reserve(steps);
  for (size_t i = 0; i < steps; ++i) {
    Vec3 c(x0 + step * static_cast<float>(i), center.y, center.z);
    path.push_back(Aabb::Cube(c, side));
  }
  return path;
}

struct RunStatsRow {
  double pages_per_step = 0.0;
  double stall_ms_per_step = 0.0;
  double hit_fraction = 0.0;
  uint64_t prefetch_issued = 0;
};

}  // namespace

int main() {
  const bool smoke = std::getenv("NEURODB_BENCH_SMOKE") != nullptr;
  const size_t neurons = smoke ? 8 : 24;
  const size_t steps = smoke ? 10 : 40;
  const float side = 30.0f;

  std::printf(
      "Session result cache: overlap x cache-size sweep\n"
      "Cortical column, %zu neurons; %zu-step linear walkthrough per cell,\n"
      "extrapolation prefetch, side %.0f um boxes.\n\n",
      neurons, steps, side);

  neuro::Circuit circuit = bench::MakeColumn(static_cast<uint32_t>(neurons),
                                             42);
  engine::EngineOptions options;
  // Small crawl pages: an exploration box spans tens of pages, so the
  // per-step page traffic is visible against the sweep.
  options.flat.elems_per_page = 64;
  engine::QueryEngine db(options);
  if (!db.LoadCircuit(circuit).ok()) {
    std::fprintf(stderr, "LoadCircuit failed\n");
    return 1;
  }

  TableWriter table(
      "one session per (method, overlap, cache boxes) cell",
      {"method", "overlap", "cache boxes", "fetches/step", "misses/step",
       "stall ms/step", "hit fraction", "speedup"});
  bench::JsonEmitter json("session_cache");
  bool claim_holds = true;

  const double overlaps[] = {0.0, 0.25, 0.5, 0.75, 0.9};
  const size_t cache_sizes[] = {0, 4, 16};
  // kNone isolates the pure delta decomposition (reads shrink with the
  // overlap fraction); kExtrapolation adds think-time result prefetch of
  // the predicted next box (reads collapse regardless of overlap — the
  // acceptance claim is checked on these rows).
  const scout::PrefetchMethod methods[] = {scout::PrefetchMethod::kNone,
                                           scout::PrefetchMethod::kExtrapolation};

  for (scout::PrefetchMethod method : methods) {
  for (double overlap : overlaps) {
    float step = side * static_cast<float>(1.0 - overlap);
    std::vector<Aabb> path = LinearPath(db.domain(), side, step, steps);

    double cold_pages = 0.0;
    for (size_t cache_boxes : cache_sizes) {
      scout::SessionOptions session_options = db.options().session;
      session_options.cost = db.options().cost;
      session_options.cache_results = cache_boxes > 0;
      session_options.result_cache_boxes = cache_boxes;

      auto session = engine::Session::Open(
          &db.flat_index(), db.flat_backend()->store(), &db.resolver(),
          method, session_options);
      if (!session.ok()) {
        std::fprintf(stderr, "Session::Open failed: %s\n",
                     session.status().ToString().c_str());
        return 1;
      }
      for (const Aabb& box : path) {
        if (!session->Step(box).ok()) {
          std::fprintf(stderr, "Step failed\n");
          return 1;
        }
      }
      scout::SessionResult result = session->Summary();

      RunStatsRow row;
      row.pages_per_step =
          static_cast<double>(result.pages_hit + result.pages_missed) /
          static_cast<double>(steps);
      double misses_per_step =
          static_cast<double>(result.pages_missed) / static_cast<double>(steps);
      row.stall_ms_per_step = result.total_stall_us / 1e3 /
                              static_cast<double>(steps);
      row.hit_fraction = result.MeanCacheHitFraction();
      row.prefetch_issued = result.prefetch_issued;

      if (cache_boxes == 0) cold_pages = row.pages_per_step;
      // A cached run with zero page reads has no finite ratio; the JSON
      // carries -1 as the documented "infinite" sentinel (the table
      // prints "inf") so trajectory diffs never compare fabricated
      // numbers.
      const bool infinite_speedup =
          row.pages_per_step == 0.0 && cold_pages > 0.0;
      double speedup =
          row.pages_per_step > 0.0 ? cold_pages / row.pages_per_step : 1.0;
      if (method == scout::PrefetchMethod::kExtrapolation && overlap >= 0.5 &&
          cache_boxes > 0 && !infinite_speedup && speedup < 2.0) {
        claim_holds = false;
      }

      char overlap_text[16], pages_text[16], misses_text[16], stall_text[16],
          hit_text[16], speedup_text[16];
      std::snprintf(overlap_text, sizeof(overlap_text), "%.0f%%",
                    overlap * 100.0);
      std::snprintf(pages_text, sizeof(pages_text), "%.2f",
                    row.pages_per_step);
      std::snprintf(misses_text, sizeof(misses_text), "%.2f",
                    misses_per_step);
      std::snprintf(stall_text, sizeof(stall_text), "%.2f",
                    row.stall_ms_per_step);
      std::snprintf(hit_text, sizeof(hit_text), "%.2f", row.hit_fraction);
      if (infinite_speedup) {
        std::snprintf(speedup_text, sizeof(speedup_text), "inf");
      } else {
        std::snprintf(speedup_text, sizeof(speedup_text), "%.1fx", speedup);
      }
      table.AddRow({scout::PrefetchMethodName(method), overlap_text,
                    TableWriter::Int(cache_boxes), pages_text, misses_text,
                    stall_text, hit_text,
                    cache_boxes == 0 ? "1.0x" : speedup_text});

      bench::JsonRow json_row;
      json_row.Str("method", scout::PrefetchMethodName(method))
          .Num("overlap", overlap)
          .Int("cache_boxes", cache_boxes)
          .Int("steps", steps)
          .Num("page_fetches_per_step", row.pages_per_step)
          .Num("misses_per_step", misses_per_step)
          .Num("stall_ms_per_step", row.stall_ms_per_step)
          .Num("cache_hit_fraction", row.hit_fraction)
          .Num("delta_volume_fraction", result.MeanDeltaVolumeFraction())
          .Int("pages_missed", result.pages_missed)
          .Int("pages_hit", result.pages_hit)
          .Int("prefetch_issued", row.prefetch_issued)
          .Num("pages_speedup_vs_cold", infinite_speedup ? -1.0 : speedup);
      json.AddRow(json_row);
    }
  }
  }

  table.Print();
  std::printf(
      "\n>=2x fewer page fetches (pool hits+misses) per step at >=50%% "
      "overlap: %s\n",
      claim_holds ? "yes" : "NO");
  if (!json.Write()) return 1;
  return claim_holds ? 0 : 2;
}
