// Commit throughput: writers × sync-policy sweep, and reader latency under
// a background checkpoint.
//
// The durable write path acknowledges a batch only after its WAL record is
// fsync'd. Under kPerBatch every batch pays its own fsync; under kGroup
// concurrent writers coalesce at the commit lock and the leader amortizes
// ONE fsync over the whole group; kNone skips the fsync (bulk load). The
// fsync is the whole story, so the sweep runs on a wrapper filesystem whose
// Sync() costs a fixed NEURODB_BENCH_FSYNC_DELAY_US (default 1000 — a
// realistic honest-flush latency) — making the kGroup-vs-kPerBatch ratio a
// property of the protocol, not of how fast the build machine's page cache
// lies about fsync.
//
// Second exhibit: reader p95 while a streaming checkpoint rewrites base.ndb
// in the background, against a no-checkpoint baseline. The rewrite holds
// the commit lock only for the pin and the final swap, so readers should
// barely notice.
//
// Emits BENCH_commit_throughput.json. commit_throughput_smoke runs the
// shrunken sweep and enforces both acceptance gates: kGroup >= 3x kPerBatch
// batches/sec at 8 writers, and checkpoint-concurrent reader p95 within
// 1.5x of baseline.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "engine/query_engine.h"
#include "neuro/workload.h"
#include "storage/disk/file.h"

using namespace neurodb;
using geom::Aabb;
using geom::Vec3;

namespace {

// Every Sync() costs a fixed busy-wait on top of the real fsync: the
// deterministic stand-in for a storage device with honest flush latency.
class SlowFsyncFile : public storage::File {
 public:
  SlowFsyncFile(std::unique_ptr<storage::File> base, uint64_t delay_us)
      : base_(std::move(base)), delay_us_(delay_us) {}

  Result<size_t> ReadAt(uint64_t offset, void* buf, size_t n) const override {
    return base_->ReadAt(offset, buf, n);
  }
  Status WriteAt(uint64_t offset, const void* buf, size_t n) override {
    return base_->WriteAt(offset, buf, n);
  }
  Status Sync() override {
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::microseconds(delay_us_);
    while (std::chrono::steady_clock::now() < until) {
    }
    return base_->Sync();
  }
  Status Truncate(uint64_t size) override { return base_->Truncate(size); }
  Result<uint64_t> Size() const override { return base_->Size(); }

 private:
  std::unique_ptr<storage::File> base_;
  uint64_t delay_us_;
};

class SlowFsyncFileSystem : public storage::FileSystem {
 public:
  SlowFsyncFileSystem(storage::FileSystem* base, uint64_t delay_us)
      : base_(base), delay_us_(delay_us) {}

  Result<std::unique_ptr<storage::File>> Open(const std::string& path,
                                              bool truncate) override {
    auto file = base_->Open(path, truncate);
    if (!file.ok()) return file.status();
    return std::unique_ptr<storage::File>(
        std::make_unique<SlowFsyncFile>(std::move(*file), delay_us_));
  }
  bool Exists(const std::string& path) const override {
    return base_->Exists(path);
  }
  Status Remove(const std::string& path) override {
    return base_->Remove(path);
  }
  Status Rename(const std::string& from, const std::string& to) override {
    return base_->Rename(from, to);
  }
  Status CreateDir(const std::string& path) override {
    return base_->CreateDir(path);
  }
  Result<std::vector<std::string>> ListDir(
      const std::string& path) const override {
    return base_->ListDir(path);
  }

 private:
  storage::FileSystem* base_;
  uint64_t delay_us_;
};

struct SweepRow {
  double wall_ms = 0.0;
  double batches_per_sec = 0.0;
  uint64_t fsyncs = 0;  // wal.ndb fsyncs inside the measured window
};

// `writers` threads each commit `batches_per_writer` single-insert batches
// as fast as the engine acknowledges them.
bool RunSweepCell(engine::SyncPolicy policy, size_t writers,
                  size_t batches_per_writer, storage::FileSystem* fs,
                  const std::string& dir, SweepRow* row) {
  std::filesystem::remove_all(dir);
  engine::EngineOptions options;
  options.durability.dir = dir;
  options.durability.fs = fs;
  options.durability.sync = policy;
  // The sweep measures the commit protocol, so keep the backends on
  // memory stores — their page writes would add a serialized non-fsync
  // cost that caps the ratio no matter how well the fsyncs coalesce.
  options.durability.disk_backends = false;
  // Let the leader hold the group open until every writer has queued
  // (the predicate fires at group_max_batches): steady-state groups of
  // `writers`, one fsync each. A lone writer never waits — its own batch
  // already satisfies the predicate.
  options.durability.group_max_batches = writers;
  options.durability.group_hold_us = 5000;
  engine::QueryEngine db(options);
  if (!db.LoadElements({}).ok()) return false;

  const uint64_t fsyncs_before = db.durability()->io().fsyncs;
  std::atomic<bool> failed{false};
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(writers);
  for (size_t w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      geom::ElementId id = 1 + w * 1000000ull;
      for (size_t i = 0; i < batches_per_writer && !failed; ++i) {
        float f = static_cast<float>((id + i) % 97);
        engine::UpdateRequest request;
        request.kind = engine::UpdateKind::kInsert;
        request.id = id + i;
        request.bounds = Aabb(Vec3(f, f, 0), Vec3(f + 1, f + 1, 1));
        auto report = db.ApplyUpdates(
            std::span<const engine::UpdateRequest>(&request, 1));
        if (!report.ok()) {
          std::fprintf(stderr, "ApplyUpdates failed: %s\n",
                       report.status().ToString().c_str());
          failed = true;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const double wall_ms =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count() /
      1e3;
  if (failed) return false;
  row->wall_ms = wall_ms;
  const double total = static_cast<double>(writers * batches_per_writer);
  row->batches_per_sec = wall_ms > 0 ? total / (wall_ms / 1e3) : 0.0;
  row->fsyncs = db.durability()->io().fsyncs - fsyncs_before;
  return true;
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t idx = std::min(
      samples.size() - 1, static_cast<size_t>(p * (samples.size() - 1)));
  return samples[idx];
}

// `queries` kCold range queries against `db`, one at a time, returning the
// per-query latency samples in microseconds.
std::vector<double> ReadLoop(engine::QueryEngine* db, const Aabb& probe,
                             size_t queries) {
  std::vector<double> samples;
  samples.reserve(queries);
  for (size_t i = 0; i < queries; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    engine::RangeRequest request;
    request.box = probe;
    request.backend = engine::BackendChoice::kFlat;
    request.cache = engine::CachePolicy::kCold;
    if (!db->Execute(request).ok()) break;
    samples.push_back(std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count() /
                      1e3);
  }
  return samples;
}

}  // namespace

int main() {
  const bool smoke = std::getenv("NEURODB_BENCH_SMOKE") != nullptr;
  uint64_t fsync_delay_us = 1000;
  if (const char* env = std::getenv("NEURODB_BENCH_FSYNC_DELAY_US")) {
    fsync_delay_us = std::strtoull(env, nullptr, 10);
  }
  const size_t batches_per_writer = smoke ? 25 : 200;
  const size_t reader_queries = smoke ? 200 : 1000;

  std::printf(
      "Commit throughput: writers x sync policy (fsync delay %llu us), "
      "%zu batches/writer.\n\n",
      static_cast<unsigned long long>(fsync_delay_us), batches_per_writer);

  SlowFsyncFileSystem slow_fs(storage::DefaultFileSystem(), fsync_delay_us);
  const std::string root = "bench_commit_throughput_data";
  std::filesystem::remove_all(root);

  TableWriter table("durable ApplyUpdates throughput",
                    {"policy", "writers", "batches", "wall_ms",
                     "batches_per_sec", "wal_fsyncs"});
  bench::JsonEmitter json("commit_throughput");
  bool ok = true;

  struct Cell {
    const char* label;
    engine::SyncPolicy policy;
    size_t writers;
  };
  const Cell kCells[] = {
      {"per_batch", engine::SyncPolicy::kPerBatch, 1},
      {"per_batch", engine::SyncPolicy::kPerBatch, 8},
      {"group", engine::SyncPolicy::kGroup, 1},
      {"group", engine::SyncPolicy::kGroup, 8},
      {"none", engine::SyncPolicy::kNone, 8},
  };
  double per_batch_8 = 0.0, group_8 = 0.0;

  for (const Cell& cell : kCells) {
    SweepRow row;
    ok = RunSweepCell(cell.policy, cell.writers, batches_per_writer, &slow_fs,
                      root + "/sweep", &row);
    if (!ok) break;
    if (cell.writers == 8) {
      if (cell.policy == engine::SyncPolicy::kPerBatch) {
        per_batch_8 = row.batches_per_sec;
      } else if (cell.policy == engine::SyncPolicy::kGroup) {
        group_8 = row.batches_per_sec;
      }
    }
    char wall_buf[32], tput_buf[32];
    std::snprintf(wall_buf, sizeof(wall_buf), "%.2f", row.wall_ms);
    std::snprintf(tput_buf, sizeof(tput_buf), "%.0f", row.batches_per_sec);
    table.AddRow({cell.label, std::to_string(cell.writers),
                  std::to_string(cell.writers * batches_per_writer), wall_buf,
                  tput_buf, std::to_string(row.fsyncs)});
    bench::JsonRow json_row;
    json_row.Str("policy", cell.label)
        .Int("writers", cell.writers)
        .Int("batches", cell.writers * batches_per_writer)
        .Int("fsync_delay_us", fsync_delay_us)
        .Num("wall_ms", row.wall_ms)
        .Num("batches_per_sec", row.batches_per_sec)
        .Int("wal_fsyncs", row.fsyncs);
    json.AddRow(json_row);
  }

  // Reader p95 with and without a background streaming checkpoint. The
  // data set is big enough that the rewrite takes real time; the writer
  // thread keeps the WAL growing so each checkpoint has work to do.
  double p95_base = 0.0, p95_ckpt = 0.0;
  if (ok) {
    neuro::Circuit circuit = bench::MakeColumn(smoke ? 8 : 24, 42);
    geom::ElementVec elements = circuit.FlattenSegments().Elements();
    const Aabb probe =
        neuro::DataCenteredQueries(elements, 40.0f, 1, 4242).front();
    const std::string dir = root + "/readers";
    std::filesystem::remove_all(dir);
    engine::EngineOptions options;
    options.durability.dir = dir;
    options.durability.sync = engine::SyncPolicy::kGroup;
    engine::QueryEngine db(options);
    ok = db.LoadElements(elements).ok();
    if (ok) {
      // Baseline: quiescent engine.
      std::vector<double> base_samples = ReadLoop(&db, probe, reader_queries);
      p95_base = Percentile(base_samples, 0.95);

      // Checkpoint run: a writer feeds the WAL and a checkpoint loop
      // streams base rewrites for the whole read window.
      std::atomic<bool> stop{false};
      std::thread writer([&] {
        geom::ElementId id = 50000000ull;
        while (!stop) {
          engine::UpdateRequest request;
          request.kind = engine::UpdateKind::kInsert;
          request.id = id++;
          float f = static_cast<float>(id % 97);
          request.bounds = Aabb(Vec3(f, f, 0), Vec3(f + 1, f + 1, 1));
          if (!db.ApplyUpdates(
                    std::span<const engine::UpdateRequest>(&request, 1))
                   .ok()) {
            break;
          }
        }
      });
      std::thread checkpointer([&] {
        while (!stop) {
          if (!db.Checkpoint().ok()) break;
        }
      });
      std::vector<double> ckpt_samples = ReadLoop(&db, probe, reader_queries);
      stop = true;
      writer.join();
      checkpointer.join();
      p95_ckpt = Percentile(ckpt_samples, 0.95);

      char base_buf[32], ckpt_buf[32];
      std::snprintf(base_buf, sizeof(base_buf), "%.1f", p95_base);
      std::snprintf(ckpt_buf, sizeof(ckpt_buf), "%.1f", p95_ckpt);
      std::printf("reader p95: baseline %.1f us, under checkpoint %.1f us\n",
                  p95_base, p95_ckpt);
      bench::JsonRow baseline_row;
      baseline_row.Str("policy", "reader_baseline")
          .Int("queries", reader_queries)
          .Num("p95_us", p95_base);
      json.AddRow(baseline_row);
      bench::JsonRow ckpt_row;
      ckpt_row.Str("policy", "reader_under_checkpoint")
          .Int("queries", reader_queries)
          .Num("p95_us", p95_ckpt);
      json.AddRow(ckpt_row);
    }
  }

  std::filesystem::remove_all(root);
  if (!ok) return 1;
  table.Print();
  if (!json.Write()) return 1;

  if (smoke) {
    // Acceptance gates (ISSUE 9). The fsync-delay filesystem makes the
    // throughput ratio deterministic; the reader gate gets a small floor
    // so microsecond-scale baseline noise cannot fail it.
    int rc = 0;
    if (per_batch_8 <= 0 || group_8 < 3.0 * per_batch_8) {
      std::fprintf(stderr,
                   "GATE FAILED: kGroup %.0f batches/sec < 3x kPerBatch %.0f "
                   "at 8 writers\n",
                   group_8, per_batch_8);
      rc = 1;
    }
    const double base_floor_us = std::max(p95_base, 200.0);
    if (p95_ckpt > 1.5 * base_floor_us) {
      std::fprintf(stderr,
                   "GATE FAILED: reader p95 %.1f us under checkpoint exceeds "
                   "1.5x baseline %.1f us\n",
                   p95_ckpt, base_floor_us);
      rc = 1;
    }
    if (rc == 0) std::printf("smoke gates passed\n");
    return rc;
  }
  return 0;
}
