// Experiment E5 (paper Figure 5): SCOUT's candidate pruning — "With several
// queries in a sequence, the structure the user follows can thus be
// identified reliably." Reports the candidate structure count per step of a
// branch-following walkthrough.

#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "flat/flat_index.h"
#include "neuro/workload.h"
#include "scout/session.h"

using namespace neurodb;

int main() {
  std::printf("E5: candidate-set pruning along the query sequence (Fig 5)\n\n");

  neuro::Circuit circuit = bench::MakeColumn(300, 3);
  neuro::SegmentDataset dataset = circuit.FlattenSegments();
  neuro::SegmentResolver resolver;
  resolver.AddDataset(dataset);

  storage::PageStore store;
  auto index = flat::FlatIndex::Build(dataset.Elements(), &store);
  if (!index.ok()) return 1;

  scout::WalkthroughSession session(&*index, &store, &resolver,
                                    scout::SessionOptions{});

  TableWriter table("E5: SCOUT candidate structures per step",
                    {"path", "step", "candidates", "prefetched", "stall ms"});

  for (uint32_t gid : {0u, 7u}) {
    auto path = neuro::FollowBranchPath(circuit, gid, 18.0f, 1);
    if (!path.ok()) return 1;
    auto queries = neuro::PathQueries(*path, 30.0f);
    auto result = session.Run(queries, scout::PrefetchMethod::kScout);
    if (!result.ok()) return 1;
    size_t show = std::min<size_t>(result->steps.size(), 10);
    for (size_t i = 0; i < show; ++i) {
      const auto& step = result->steps[i];
      table.AddRow({"gid=" + std::to_string(gid), TableWriter::Int(i),
                    TableWriter::Int(step.candidates),
                    TableWriter::Int(step.prefetched),
                    bench::UsToMs(step.stall_us)});
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape: many candidates at step 0 (every structure leaving "
      "the box), shrinking within a few steps as the intersection of "
      "consecutive queries isolates the followed branch.\n");
  return 0;
}
