// Experiment E10 (paper Section 4 setting): join cost vs the synapse
// distance epsilon. Larger epsilon inflates every A-box, increasing both
// candidate pairs and true results.

#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "touch/spatial_join.h"

using namespace neurodb;

int main() {
  std::printf("E10: join cost vs epsilon (synapse distance)\n\n");

  neuro::Circuit circuit = bench::MakeColumn(100, 23);
  auto axons = circuit.FlattenSegments(neuro::NeuriteFilter::kAxons);
  auto dendrites = circuit.FlattenSegments(neuro::NeuriteFilter::kDendrites);
  touch::JoinInput a =
      touch::JoinInput::FromSegments(axons.segments, axons.ids);
  touch::JoinInput b =
      touch::JoinInput::FromSegments(dendrites.segments, dendrites.ids);
  std::printf("|A| = %zu, |B| = %zu\n\n", a.size(), b.size());

  TableWriter table("E10: TOUCH and PBSM vs epsilon",
                    {"eps um", "method", "total ms", "comparisons",
                     "filtered B", "synapses"});

  for (float eps : {0.5f, 1.0f, 2.0f, 4.0f, 8.0f}) {
    touch::JoinOptions options;
    options.epsilon = eps;
    for (auto method : {touch::JoinMethod::kTouch, touch::JoinMethod::kPbsm}) {
      auto result = touch::RunJoin(method, a, b, options);
      if (!result.ok()) return 1;
      const auto& s = result->stats;
      table.AddRow({TableWriter::Num(eps, 1), touch::JoinMethodName(method),
                    TableWriter::Num(s.total_ns / 1e6, 1),
                    TableWriter::Int(s.mbr_tests),
                    method == touch::JoinMethod::kTouch
                        ? TableWriter::Int(s.filtered)
                        : "-",
                    TableWriter::Int(s.results)});
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape: results grow superlinearly in eps; TOUCH's "
      "empty-space filtering shrinks as eps closes the gaps between "
      "partitions.\n");
  return 0;
}
