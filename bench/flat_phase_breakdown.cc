// Experiment E3 (paper Section 2.1): "Both phases of the query execution
// are independent of the dataset density. Finding an arbitrary element in a
// query range typically only depends on the height of the R-Tree [...]
// Retrieving all neighboring elements [...] only depends on the size of the
// result." This bench splits a FLAT query into its phases across a density
// sweep.

#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "flat/flat_index.h"
#include "neuro/workload.h"

using namespace neurodb;
using geom::Aabb;
using geom::Vec3;

int main() {
  std::printf(
      "E3: FLAT phase breakdown across densities (paper Sec 2.1)\n\n");

  TableWriter table("E3: seed vs crawl work per query",
                    {"density", "seed tree height", "seed nodes",
                     "crawl pages", "results", "crawl pages/Kresult"});

  const Aabb domain(Vec3(0, 0, 0), Vec3(100, 100, 100));
  for (size_t scale : {1, 2, 4, 8, 16}) {
    const size_t n = 25000 * scale;
    neuro::SegmentDataset data =
        neuro::UniformSegments(n, domain, 6.0f, 1.5f, 0.4f, 55);
    geom::ElementVec elements = data.Elements();
    storage::PageStore store;
    auto index = flat::FlatIndex::Build(elements, &store);
    if (!index.ok()) return 1;

    auto queries = neuro::DataCenteredQueries(elements, 25.0f, 20, 11);
    storage::BufferPool pool(&store, 1 << 20);
    uint64_t seed_nodes = 0, crawl_pages = 0, results = 0;
    for (const auto& q : queries) {
      flat::FlatQueryStats stats;
      std::vector<geom::ElementId> out;
      if (!index->RangeQuery(q, &pool, &out, &stats).ok()) return 1;
      seed_nodes += stats.seed_nodes_visited;
      crawl_pages += stats.data_pages_read;
      results += stats.results;
      pool.EvictAll();
    }
    const uint64_t q = queries.size();
    table.AddRow({std::to_string(scale) + "x",
                  TableWriter::Int(index->seed_tree().Height()),
                  TableWriter::Num(static_cast<double>(seed_nodes) / q, 1),
                  TableWriter::Int(crawl_pages / q),
                  TableWriter::Int(results / q),
                  TableWriter::Num(1000.0 * crawl_pages / results, 1)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: seed nodes ~ tree height (flat in density); crawl "
      "pages per result constant.\n");
  return 0;
}
